// The scenario subsystem: timed generators, barrier semantics, collective
// schedules, trace round-trips, and the CLI grammar.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

#include "nue/nue_routing.hpp"
#include "routing/dfsssp.hpp"
#include "sim/scenario.hpp"
#include "sim/traffic.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace nue {
namespace {

using test::make_ring;

SimConfig scenario_config() {
  SimConfig cfg;
  cfg.deadlock_cycles = 5000;
  cfg.max_cycles = 2'000'000;
  return cfg;
}

TEST(Scenario, UniformArrivalsExactCountAndTimeBounds) {
  Network net = make_ring(4, 2);
  Rng rng(3);
  const auto phase = uniform_arrivals_phase(net, 250, 64, 1000, rng);
  ASSERT_EQ(phase.messages.size(), 250u);
  for (const auto& tm : phase.messages) {
    EXPECT_NE(tm.msg.src, tm.msg.dst);
    EXPECT_LT(tm.time, 1000u);
  }
}

TEST(Scenario, DestPoolConfinesDestinations) {
  Network net = make_ring(6, 2);
  Rng rng(9);
  const auto terminals = net.terminals();
  const std::vector<NodeId> pool{terminals[1], terminals[4]};
  const auto phase = uniform_arrivals_phase(net, 120, 64, 500, rng, pool);
  ASSERT_EQ(phase.messages.size(), 120u);
  for (const auto& tm : phase.messages) {
    EXPECT_TRUE(tm.msg.dst == pool[0] || tm.msg.dst == pool[1]);
    EXPECT_NE(tm.msg.src, tm.msg.dst);
  }
}

TEST(Scenario, BurstArrivalsShareInstants) {
  Network net = make_ring(4, 2);
  Rng rng(5);
  const auto phase = burst_arrivals_phase(net, 4, 10, 128, 50, rng);
  ASSERT_EQ(phase.messages.size(), 40u);
  std::set<std::uint64_t> instants;
  for (const auto& tm : phase.messages) instants.insert(tm.time);
  EXPECT_EQ(instants.size(), 4u);  // one instant per burst
  for (std::uint64_t t : instants) EXPECT_EQ(t % 50, 0u);
}

TEST(Scenario, HotspotDriftMovesTheHotTerminal) {
  Network net = make_ring(8, 2);  // 16 terminals
  Rng rng(17);
  const auto phase = hotspot_drift_phase(net, 1200, 64, 0.9, 1200, 4, rng);
  ASSERT_EQ(phase.messages.size(), 1200u);
  // Majority destination in the first quarter differs from the last one:
  // the hot terminal walked.
  auto majority_dst = [&](std::uint64_t lo, std::uint64_t hi) {
    std::map<NodeId, std::size_t> freq;
    for (const auto& tm : phase.messages) {
      if (tm.time >= lo && tm.time < hi) ++freq[tm.msg.dst];
    }
    NodeId best = 0;
    std::size_t best_n = 0;
    for (const auto& [node, n] : freq) {
      if (n > best_n) best = node, best_n = n;
    }
    return best;
  };
  EXPECT_NE(majority_dst(0, 300), majority_dst(900, 1200));
}

TEST(Scenario, BarrierPhasesRunBackToBack) {
  Network net = make_ring(6, 2);
  const auto rr = route_nue(net, net.terminals(), NueOptions{});
  Rng rng(1);
  Scenario sc;
  sc.phases.push_back(uniform_arrivals_phase(net, 40, 256, 100, rng));
  sc.phases[0].label = "wave-a";
  sc.phases.push_back(uniform_arrivals_phase(net, 40, 256, 100, rng));
  sc.phases[1].label = "wave-b";  // barrier=true by default
  const auto res = simulate_scenario(net, rr, sc, scenario_config());
  ASSERT_EQ(res.status, SimRunStatus::kCompleted);
  ASSERT_EQ(res.phases.size(), 2u);
  EXPECT_EQ(res.phases[0].label, "wave-a");
  EXPECT_EQ(res.phases[0].messages, 40u);
  EXPECT_GE(res.phases[0].end_cycle, res.phases[0].start_cycle);
  // The barrier drains wave-a before wave-b's clock starts.
  EXPECT_GT(res.phases[1].start_cycle, res.phases[0].end_cycle);
  EXPECT_EQ(res.sim.delivered_packets, 80u);
}

TEST(Scenario, NonBarrierPhaseOverlaysPredecessor) {
  Network net = make_ring(6, 2);
  const auto rr = route_nue(net, net.terminals(), NueOptions{});
  Rng rng(2);
  Scenario sc;
  sc.phases.push_back(uniform_arrivals_phase(net, 30, 256, 200, rng));
  ScenarioPhase overlay = burst_arrivals_phase(net, 2, 5, 128, 60, rng);
  overlay.barrier = false;
  sc.phases.push_back(overlay);
  const auto res = simulate_scenario(net, rr, sc, scenario_config());
  ASSERT_EQ(res.status, SimRunStatus::kCompleted);
  ASSERT_EQ(res.phases.size(), 2u);
  EXPECT_EQ(res.phases[1].start_cycle, res.phases[0].start_cycle);
}

TEST(Scenario, AllreduceRingCompletesWithFullSchedule) {
  Network net = make_ring(4, 2);  // 8 terminals
  const auto rr = route_nue(net, net.terminals(), NueOptions{});
  const auto sc = allreduce_ring_scenario(net, 8192);
  ASSERT_EQ(sc.phases.size(), 2u * (8 - 1));  // reduce-scatter + allgather
  for (const auto& ph : sc.phases) {
    EXPECT_TRUE(ph.barrier);
    EXPECT_EQ(ph.messages.size(), 8u);  // every rank exchanges each step
  }
  const auto res = simulate_scenario(net, rr, sc, scenario_config());
  ASSERT_EQ(res.status, SimRunStatus::kCompleted);
  EXPECT_EQ(res.phases.size(), sc.phases.size());
  // Barriered spans are strictly ordered.
  for (std::size_t i = 1; i < res.phases.size(); ++i) {
    EXPECT_GT(res.phases[i].start_cycle, res.phases[i - 1].end_cycle);
  }
}

TEST(Scenario, AllreduceTreeHasLogDepth) {
  Network net = make_ring(4, 2);  // 8 terminals
  const auto sc = allreduce_tree_scenario(net, 4096);
  ASSERT_EQ(sc.phases.size(), 6u);  // 3 reduce up + 3 broadcast down
  // Reduce fan-in halves each step; the broadcast mirror fans back out.
  EXPECT_EQ(sc.phases[0].messages.size(), 4u);
  EXPECT_EQ(sc.phases[1].messages.size(), 2u);
  EXPECT_EQ(sc.phases[2].messages.size(), 1u);
  EXPECT_EQ(sc.phases[3].messages.size(), 1u);
  EXPECT_EQ(sc.phases[4].messages.size(), 2u);
  EXPECT_EQ(sc.phases[5].messages.size(), 4u);
}

TEST(Scenario, AlltoallPhasedMatchesFlatGenerator) {
  Network net = make_ring(5, 2);
  const auto flat = alltoall_shift_messages(net, 512);
  const auto sc = alltoall_phased_scenario(net, 512);
  EXPECT_EQ(sc.total_messages(), flat.size());
  std::uint64_t flat_bytes = 0;
  for (const auto& m : flat) flat_bytes += m.bytes;
  EXPECT_EQ(sc.total_bytes(), flat_bytes);
}

TEST(Scenario, TraceRoundTripsExactly) {
  Network net = make_ring(4, 2);
  Rng rng(23);
  Scenario sc;
  sc.phases.push_back(uniform_arrivals_phase(net, 25, 96, 400, rng));
  sc.phases[0].label = "warmup";
  ScenarioPhase bursts = burst_arrivals_phase(net, 3, 4, 64, 30, rng);
  bursts.barrier = false;
  bursts.label = "bursts";
  sc.phases.push_back(bursts);

  std::stringstream ss;
  write_trace(ss, sc);
  const Scenario back = read_trace(ss);
  ASSERT_EQ(back.phases.size(), sc.phases.size());
  for (std::size_t p = 0; p < sc.phases.size(); ++p) {
    EXPECT_EQ(back.phases[p].label, sc.phases[p].label);
    EXPECT_EQ(back.phases[p].barrier, sc.phases[p].barrier);
    ASSERT_EQ(back.phases[p].messages.size(), sc.phases[p].messages.size());
    for (std::size_t i = 0; i < sc.phases[p].messages.size(); ++i) {
      const auto& a = sc.phases[p].messages[i];
      const auto& b = back.phases[p].messages[i];
      EXPECT_EQ(b.msg.src, a.msg.src);
      EXPECT_EQ(b.msg.dst, a.msg.dst);
      EXPECT_EQ(b.msg.bytes, a.msg.bytes);
      EXPECT_EQ(b.time, a.time);
    }
  }
}

TEST(Scenario, TraceFileSaveLoad) {
  Network net = make_ring(3, 1);
  Rng rng(31);
  Scenario sc;
  sc.phases.push_back(uniform_arrivals_phase(net, 10, 64, 50, rng));
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / "nue_scenario.trace")
          .string();
  save_trace_file(path, sc);
  const Scenario back = load_trace_file(path);
  EXPECT_EQ(back.total_messages(), sc.total_messages());
  EXPECT_EQ(back.total_bytes(), sc.total_bytes());
  std::filesystem::remove(path);
}

TEST(Scenario, MalformedTraceThrows) {
  std::stringstream ss("not a trace\n");
  EXPECT_THROW(read_trace(ss), std::logic_error);
}

TEST(Scenario, ParseGrammarBuildsPhases) {
  Network net = make_ring(6, 2);
  Rng rng(41);
  const Scenario sc = parse_scenario(
      net, "uniform:50:256:100;burst:3:10:128:50;allreduce-ring:4096", rng);
  // uniform (1 phase) + burst (1 phase) + ring allreduce (2(T-1) phases).
  ASSERT_EQ(sc.phases.size(), 2u + 2u * (12 - 1));
  EXPECT_EQ(sc.phases[0].messages.size(), 50u);
  EXPECT_EQ(sc.phases[1].messages.size(), 30u);
}

TEST(Scenario, ParseGrammarRejectsMalformedSpecs) {
  Network net = make_ring(3, 1);
  Rng rng(1);
  EXPECT_THROW(parse_scenario(net, "", rng), std::logic_error);
  EXPECT_THROW(parse_scenario(net, "uniform:50", rng), std::logic_error);
  EXPECT_THROW(parse_scenario(net, "warp:9", rng), std::logic_error);
  EXPECT_THROW(parse_scenario(net, "uniform:x:64:10", rng), std::logic_error);
}

TEST(Scenario, ParsedScenarioSimulates) {
  Network net = make_ring(6, 2);
  const auto rr = route_nue(net, net.terminals(), NueOptions{});
  Rng rng(8);
  const Scenario sc =
      parse_scenario(net, "burst:2:8:256:40;alltoall:512:4", rng);
  const auto res = simulate_scenario(net, rr, sc, scenario_config());
  ASSERT_EQ(res.status, SimRunStatus::kCompleted);
  EXPECT_TRUE(res.sim.completed);
  EXPECT_EQ(res.sim.delivered_packets, sc.total_messages());
  EXPECT_EQ(res.sim.delivered_bytes, sc.total_bytes());
  EXPECT_EQ(res.phases.size(), sc.phases.size());
}

TEST(Scenario, DeadlockStopsTheScenarioEarly) {
  Network net = make_ring(6, 2);
  const auto rr = route_minhop(net, net.terminals());
  auto cfg = scenario_config();
  cfg.buffer_flits = 2;
  const auto sc = alltoall_phased_scenario(net, 4096);
  const auto res = simulate_scenario(net, rr, sc, cfg);
  EXPECT_EQ(res.status, SimRunStatus::kDeadlocked);
  EXPECT_TRUE(res.sim.deadlocked);
  // At least one span was opened before the hang; not all completed.
  EXPECT_LE(res.phases.size(), sc.phases.size());
  EXPECT_FALSE(res.phases.empty());
}

}  // namespace
}  // namespace nue
