// Resilience-manager reuse regression (ISSUE 7 satellite): one manager
// instance must survive an unbounded fault/repair event stream — the
// resident daemon's control loop — without monotonic growth or stale
// state. Holds the manager to the contract documented in
// resilience.hpp: the verdict log honours its retention cap with exact
// aggregate counts, the fabric's adjacency pool stays within its
// compaction bound, escape-root hints stay bounded by the VL budget,
// epochs stay monotone, and sampled epochs keep passing the full
// validation oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "metrics/reconfig_log.hpp"
#include "resilience/resilience.hpp"
#include "routing/validate.hpp"
#include "topology/faults.hpp"
#include "topology/torus.hpp"

namespace nue {
namespace {

TEST(ReconfigLogRetention, EvictionKeepsAggregatesExact) {
  ReconfigLog log;
  log.set_max_records(16);
  // Differential reference: an unbounded log fed the same records must
  // summarize identically — eviction may only lose per-record detail,
  // never an aggregate (including the per-rung and per-verdict counts a
  // bounded resident manager reports through the daemon's status op).
  ReconfigLog unbounded;
  std::size_t transitions = 0, noops = 0, hitless = 0, drained = 0;
  std::size_t waved = 0, wave_commits = 0;
  std::map<std::string, std::size_t> by_step;
  double max_ms = 0.0;
  for (int i = 0; i < 1000; ++i) {
    TransitionRecord r;
    r.epoch = static_cast<std::uint64_t>(i);
    r.event = "synthetic " + std::to_string(i);
    if (i % 5 == 0) {
      r.committed_step = "noop";
      ++noops;
    } else if (i % 11 == 0) {
      // A two-epoch wave chain's intermediate record.
      r.committed_step = "wave";
      r.hitless = true;
      r.wave_index = 1;
      r.wave_count = 2;
      r.repair_ms = static_cast<double>(i % 37);
      ++transitions;
      ++hitless;
      ++wave_commits;
      max_ms = std::max(max_ms, r.repair_ms);
    } else if (i % 11 == 1) {
      // ... and its final record, carrying the producing rung.
      r.committed_step = "incremental";
      r.hitless = true;
      r.wave_index = 2;
      r.wave_count = 2;
      r.repair_ms = static_cast<double>(i % 37);
      ++transitions;
      ++hitless;
      ++waved;
      ++wave_commits;
      max_ms = std::max(max_ms, r.repair_ms);
    } else {
      r.committed_step = i % 3 == 0 ? "full-recompute" : "incremental";
      r.hitless = i % 2 == 0;
      r.drained = !r.hitless && i % 7 == 0;
      r.repair_ms = static_cast<double>(i % 37);
      ++transitions;
      if (r.hitless) ++hitless;
      if (r.drained) ++drained;
      max_ms = std::max(max_ms, r.repair_ms);
    }
    ++by_step[r.committed_step];
    log.add(r);
    unbounded.add(r);
    EXPECT_LE(log.records().size(), 16u);
  }
  EXPECT_EQ(log.total_records(), 1000u);
  EXPECT_EQ(log.evicted_records(), 1000u - log.records().size());
  const auto s = log.summarize();
  EXPECT_EQ(s.transitions, transitions);
  EXPECT_EQ(s.noops, noops);
  EXPECT_EQ(s.hitless, hitless);
  EXPECT_EQ(s.drained, drained);
  EXPECT_EQ(s.waved, waved);
  EXPECT_EQ(s.wave_commits, wave_commits);
  EXPECT_EQ(s.by_step, by_step);
  EXPECT_EQ(s.evicted, log.evicted_records());
  EXPECT_DOUBLE_EQ(s.max_repair_ms, max_ms);
  const auto u = unbounded.summarize();
  EXPECT_EQ(u.transitions, s.transitions);
  EXPECT_EQ(u.noops, s.noops);
  EXPECT_EQ(u.hitless, s.hitless);
  EXPECT_EQ(u.drained, s.drained);
  EXPECT_EQ(u.waved, s.waved);
  EXPECT_EQ(u.wave_commits, s.wave_commits);
  EXPECT_EQ(u.by_step, s.by_step);
  EXPECT_DOUBLE_EQ(u.max_repair_ms, s.max_repair_ms);
  // The retained window is the newest suffix, in order.
  const auto& recs = log.records();
  for (std::size_t i = 1; i < recs.size(); ++i) {
    EXPECT_EQ(recs[i].epoch, recs[i - 1].epoch + 1);
  }
  EXPECT_EQ(recs.back().epoch, 999u);
}

TEST(ReconfigLogRetention, UnboundedByDefault) {
  ReconfigLog log;
  for (int i = 0; i < 200; ++i) {
    TransitionRecord r;
    r.committed_step = "incremental";
    log.add(r);
  }
  EXPECT_EQ(log.records().size(), 200u);
  EXPECT_EQ(log.evicted_records(), 0u);
}

TEST(ResilienceChurn, TenThousandEventsNoMonotonicGrowth) {
  TorusSpec spec{{3, 3}, 1, 1};
  Network net = make_torus(spec);
  const FaultTrace trace = draw_fault_trace(net, "torus:3x3:1", 29,
                                            10000, 0.5);
  ASSERT_GE(trace.events.size(), 9000u) << "trace ran out of legal moves";

  resilience::RepairPolicy policy;
  policy.engine = resilience::Engine::kNue;
  policy.vls = 2;
  policy.max_vls = 4;
  policy.seed = 29;
  policy.num_threads = 1;
  policy.log_max_records = 128;
  resilience::ResilienceManager mgr(net, policy);

  std::size_t transitions = 0, noops = 0, hitless = 0, drained = 0;
  std::size_t waved = 0, wave_commits = 0, wave_intermediates = 0;
  std::uint64_t last_epoch = mgr.epoch();
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    const TransitionRecord rec = mgr.apply(trace.events[i]);
    if (rec.committed_step == "noop") {
      ++noops;
      EXPECT_EQ(rec.epoch, last_epoch);
    } else {
      ++transitions;
      if (rec.hitless) ++hitless;
      if (rec.drained) ++drained;
      if (rec.wave_count > 0) {
        // A wave chain returns its final record; the intermediate epochs
        // were committed (and logged) on the way, so the epoch advances
        // by the chain length — still strictly monotone, never skipping
        // an uncommitted number.
        EXPECT_EQ(rec.wave_index, rec.wave_count);
        EXPECT_GE(rec.wave_count, 2u);
        ++waved;
        wave_commits += rec.wave_count;
        wave_intermediates += rec.wave_count - 1;
        EXPECT_EQ(rec.epoch, last_epoch + rec.wave_count)
            << "wave-chain epochs skipped at event " << i;
      } else {
        EXPECT_EQ(rec.epoch, last_epoch + 1) << "epoch skipped at event "
                                             << i;
      }
      last_epoch = rec.epoch;
    }
    if (i % 500 == 0) {
      // Bounded structures: the verdict log obeys its retention cap and
      // the fabric's adjacency pool obeys its compaction bound even
      // after thousands of remove/restore cycles.
      EXPECT_LE(mgr.log().records().size(), policy.log_max_records);
      mgr.net().check_pool_invariants();
      // Escape-root hints are per virtual layer, never beyond the
      // escalated VL budget.
      EXPECT_LE(mgr.table()->num_vls(), policy.max_vls);
    }
    if (i % 2500 == 0) {
      const auto rep = validate_routing(mgr.net(), *mgr.table());
      ASSERT_TRUE(rep.ok()) << "epoch " << mgr.epoch()
                            << " failed validation at event " << i << ": "
                            << rep.detail;
    }
  }

  // The log's aggregate summary stayed exact across eviction: it matches
  // the counts folded record by record above. The log carries one record
  // per committed epoch, so wave intermediates appear in it (as hitless
  // "wave" transitions) even though apply() returned only chain finals.
  const auto s = mgr.log().summarize();
  // +1: the constructor logs the initial table (epoch 1) as a transition.
  EXPECT_EQ(s.transitions, transitions + wave_intermediates + 1);
  EXPECT_EQ(s.noops, noops);
  EXPECT_EQ(s.hitless, hitless + wave_intermediates);
  EXPECT_EQ(s.drained, drained);
  EXPECT_EQ(s.waved, waved);
  EXPECT_EQ(s.wave_commits, wave_commits);
  auto wave_steps = s.by_step.find("wave");
  EXPECT_EQ(wave_steps == s.by_step.end() ? 0u : wave_steps->second,
            wave_intermediates);
  EXPECT_EQ(mgr.log().total_records(),
            trace.events.size() + wave_intermediates + 1);
  EXPECT_LE(mgr.log().records().size(), policy.log_max_records);

  const auto rep = validate_routing(mgr.net(), *mgr.table());
  EXPECT_TRUE(rep.ok()) << rep.detail;
  mgr.net().check_pool_invariants();
}

}  // namespace
}  // namespace nue
