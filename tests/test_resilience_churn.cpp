// Resilience-manager reuse regression (ISSUE 7 satellite): one manager
// instance must survive an unbounded fault/repair event stream — the
// resident daemon's control loop — without monotonic growth or stale
// state. Holds the manager to the contract documented in
// resilience.hpp: the verdict log honours its retention cap with exact
// aggregate counts, the fabric's adjacency pool stays within its
// compaction bound, escape-root hints stay bounded by the VL budget,
// epochs stay monotone, and sampled epochs keep passing the full
// validation oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "metrics/reconfig_log.hpp"
#include "resilience/resilience.hpp"
#include "routing/validate.hpp"
#include "topology/faults.hpp"
#include "topology/torus.hpp"

namespace nue {
namespace {

TEST(ReconfigLogRetention, EvictionKeepsAggregatesExact) {
  ReconfigLog log;
  log.set_max_records(16);
  std::size_t transitions = 0, noops = 0, hitless = 0, drained = 0;
  double max_ms = 0.0;
  for (int i = 0; i < 1000; ++i) {
    TransitionRecord r;
    r.epoch = static_cast<std::uint64_t>(i);
    r.event = "synthetic " + std::to_string(i);
    if (i % 5 == 0) {
      r.committed_step = "noop";
      ++noops;
    } else {
      r.committed_step = i % 3 == 0 ? "full-recompute" : "incremental";
      r.hitless = i % 2 == 0;
      r.drained = !r.hitless && i % 7 == 0;
      r.repair_ms = static_cast<double>(i % 37);
      ++transitions;
      if (r.hitless) ++hitless;
      if (r.drained) ++drained;
      max_ms = std::max(max_ms, r.repair_ms);
    }
    log.add(r);
    EXPECT_LE(log.records().size(), 16u);
  }
  EXPECT_EQ(log.total_records(), 1000u);
  EXPECT_EQ(log.evicted_records(), 1000u - log.records().size());
  const auto s = log.summarize();
  EXPECT_EQ(s.transitions, transitions);
  EXPECT_EQ(s.noops, noops);
  EXPECT_EQ(s.hitless, hitless);
  EXPECT_EQ(s.drained, drained);
  EXPECT_EQ(s.evicted, log.evicted_records());
  EXPECT_DOUBLE_EQ(s.max_repair_ms, max_ms);
  // The retained window is the newest suffix, in order.
  const auto& recs = log.records();
  for (std::size_t i = 1; i < recs.size(); ++i) {
    EXPECT_EQ(recs[i].epoch, recs[i - 1].epoch + 1);
  }
  EXPECT_EQ(recs.back().epoch, 999u);
}

TEST(ReconfigLogRetention, UnboundedByDefault) {
  ReconfigLog log;
  for (int i = 0; i < 200; ++i) {
    TransitionRecord r;
    r.committed_step = "incremental";
    log.add(r);
  }
  EXPECT_EQ(log.records().size(), 200u);
  EXPECT_EQ(log.evicted_records(), 0u);
}

TEST(ResilienceChurn, TenThousandEventsNoMonotonicGrowth) {
  TorusSpec spec{{3, 3}, 1, 1};
  Network net = make_torus(spec);
  const FaultTrace trace = draw_fault_trace(net, "torus:3x3:1", 29,
                                            10000, 0.5);
  ASSERT_GE(trace.events.size(), 9000u) << "trace ran out of legal moves";

  resilience::RepairPolicy policy;
  policy.engine = resilience::Engine::kNue;
  policy.vls = 2;
  policy.max_vls = 4;
  policy.seed = 29;
  policy.num_threads = 1;
  policy.log_max_records = 128;
  resilience::ResilienceManager mgr(net, policy);

  std::size_t transitions = 0, noops = 0, hitless = 0, drained = 0;
  std::uint64_t last_epoch = mgr.epoch();
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    const TransitionRecord rec = mgr.apply(trace.events[i]);
    if (rec.committed_step == "noop") {
      ++noops;
      EXPECT_EQ(rec.epoch, last_epoch);
    } else {
      ++transitions;
      if (rec.hitless) ++hitless;
      if (rec.drained) ++drained;
      EXPECT_EQ(rec.epoch, last_epoch + 1) << "epoch skipped at event " << i;
      last_epoch = rec.epoch;
    }
    if (i % 500 == 0) {
      // Bounded structures: the verdict log obeys its retention cap and
      // the fabric's adjacency pool obeys its compaction bound even
      // after thousands of remove/restore cycles.
      EXPECT_LE(mgr.log().records().size(), policy.log_max_records);
      mgr.net().check_pool_invariants();
      // Escape-root hints are per virtual layer, never beyond the
      // escalated VL budget.
      EXPECT_LE(mgr.table()->num_vls(), policy.max_vls);
    }
    if (i % 2500 == 0) {
      const auto rep = validate_routing(mgr.net(), *mgr.table());
      ASSERT_TRUE(rep.ok()) << "epoch " << mgr.epoch()
                            << " failed validation at event " << i << ": "
                            << rep.detail;
    }
  }

  // The log's aggregate summary stayed exact across eviction: it matches
  // the counts folded record by record above.
  const auto s = mgr.log().summarize();
  // +1: the constructor logs the initial table (epoch 1) as a transition.
  EXPECT_EQ(s.transitions, transitions + 1);
  EXPECT_EQ(s.noops, noops);
  EXPECT_EQ(s.hitless, hitless);
  EXPECT_EQ(s.drained, drained);
  EXPECT_EQ(mgr.log().total_records(), trace.events.size() + 1);
  EXPECT_LE(mgr.log().records().size(), policy.log_max_records);

  const auto rep = validate_routing(mgr.net(), *mgr.table());
  EXPECT_TRUE(rep.ok()) << rep.detail;
  mgr.net().check_pool_invariants();
}

}  // namespace
}  // namespace nue
