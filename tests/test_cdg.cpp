// Tests for the channel-dependency-graph machinery: CdgIndex (complete CDG
// structure, Definition 6), LayerCdg (counted per-layer CDG for
// DFSSSP/LASH), and CompleteCdg (Nue's ω engine, Algorithm 3).
#include <gtest/gtest.h>

#include "nue/complete_cdg.hpp"
#include "routing/cdg_index.hpp"
#include "routing/layer_cdg.hpp"
#include "test_helpers.hpp"

namespace nue {
namespace {

using test::make_paper_ring;
using test::make_ring;

TEST(CdgIndex, ExcludesUturns) {
  Network net = test::make_line(3, 0);
  CdgIndex idx(net);
  // Channel (0->1): successors are channels out of 1 except back to 0.
  ChannelId c01 = kInvalidChannel;
  for (ChannelId c = 0; c < net.num_channels(); ++c) {
    if (net.src(c) == 0 && net.dst(c) == 1) c01 = c;
  }
  ASSERT_NE(c01, kInvalidChannel);
  const auto succ = idx.successors(c01);
  ASSERT_EQ(succ.size(), 1u);
  EXPECT_EQ(net.src(succ[0]), 1u);
  EXPECT_EQ(net.dst(succ[0]), 2u);
}

TEST(CdgIndex, ExcludesUturnsOverParallelChannels) {
  // Multigraph: u-turn via a *parallel* channel is also forbidden
  // (Definition 6 requires n_x != n_z).
  Network net;
  net.add_switch();
  net.add_switch();
  net.add_link(0, 1);
  net.add_link(0, 1);
  CdgIndex idx(net);
  for (ChannelId c = 0; c < net.num_channels(); ++c) {
    EXPECT_EQ(idx.successors(c).size(), 0u) << "channel " << c;
  }
}

TEST(CdgIndex, PaperFig3CompleteCdgShape) {
  // Fig. 3: the complete CDG of the 5-ring with shortcut has 12 vertices
  // (channels). Each vertex's out-degree = deg(head) - 1 in a simple
  // graph; total edges = sum over channels.
  Network net = make_paper_ring();
  CdgIndex idx(net);
  EXPECT_EQ(idx.num_channels(), 12u);
  std::size_t edges = 0;
  for (ChannelId c = 0; c < net.num_channels(); ++c) {
    edges += idx.successors(c).size();
    EXPECT_EQ(idx.successors(c).size(), net.degree(net.dst(c)) - 1);
  }
  EXPECT_EQ(edges, idx.num_edges());
  // Degrees: n3 and n5 have degree 3, the rest 2. Sum over channels of
  // (deg(head)-1): channels into n3/n5 (3 each... n3: from n2, n4, n5) ->
  // 3 channels * 2 + ... total = 2*(3*2) + 6*1 = 18.
  EXPECT_EQ(edges, 18u);
}

TEST(CdgIndex, EdgeIdRoundTrip) {
  Network net = make_paper_ring();
  CdgIndex idx(net);
  for (ChannelId c = 0; c < net.num_channels(); ++c) {
    for (ChannelId s : idx.successors(c)) {
      const auto e = idx.edge_id(c, s);
      ASSERT_NE(e, CdgIndex::kNoEdge);
      EXPECT_EQ(idx.edge_head(e), s);
    }
    EXPECT_EQ(idx.edge_id(c, c), CdgIndex::kNoEdge);
  }
}

TEST(CdgIndex, SkipsDeadChannels) {
  Network net = make_ring(4, 0);
  net.remove_link(net.out(0)[0]);
  CdgIndex idx(net);
  for (ChannelId c = 0; c < net.num_channels(); ++c) {
    if (!net.channel_alive(c)) {
      EXPECT_EQ(idx.successors(c).size(), 0u);
    } else {
      for (ChannelId s : idx.successors(c)) {
        EXPECT_TRUE(net.channel_alive(s));
      }
    }
  }
}

/// Find the channel id for (a -> b).
ChannelId chan(const Network& net, NodeId a, NodeId b) {
  for (ChannelId c : net.out(a)) {
    if (net.dst(c) == b) return c;
  }
  ADD_FAILURE() << "no channel " << a << "->" << b;
  return kInvalidChannel;
}

TEST(LayerCdg, DetectsCycleOnRing) {
  Network net = make_ring(4, 0);
  CdgIndex idx(net);
  LayerCdg cdg(idx);
  // Clockwise dependencies 0->1->2->3->0.
  std::vector<std::pair<ChannelId, ChannelId>> deps;
  for (NodeId v = 0; v < 4; ++v) {
    deps.push_back({chan(net, v, (v + 1) % 4),
                    chan(net, (v + 1) % 4, (v + 2) % 4)});
  }
  for (std::size_t i = 0; i + 1 < deps.size(); ++i) {
    EXPECT_FALSE(cdg.creates_cycle(deps[i].first, deps[i].second));
    cdg.add(idx.edge_id(deps[i].first, deps[i].second));
    EXPECT_TRUE(cdg.find_cycle().empty());
  }
  // The last dependency closes the ring cycle.
  EXPECT_TRUE(cdg.creates_cycle(deps.back().first, deps.back().second));
  cdg.add(idx.edge_id(deps.back().first, deps.back().second));
  const auto cycle = cdg.find_cycle();
  EXPECT_EQ(cycle.size(), 4u);
}

TEST(LayerCdg, RemoveReopensGraph) {
  Network net = make_ring(3, 0);
  CdgIndex idx(net);
  LayerCdg cdg(idx);
  std::vector<CdgIndex::EdgeId> ids;
  for (NodeId v = 0; v < 3; ++v) {
    const auto e = idx.edge_id(chan(net, v, (v + 1) % 3),
                               chan(net, (v + 1) % 3, (v + 2) % 3));
    cdg.add(e);
    ids.push_back(e);
  }
  EXPECT_FALSE(cdg.find_cycle().empty());
  cdg.remove(ids[0]);
  EXPECT_TRUE(cdg.find_cycle().empty());
}

TEST(CompleteCdg, ConditionAandB) {
  Network net = make_ring(5, 0);
  CdgIndex idx(net);
  CompleteCdg cdg(net, idx);
  const ChannelId a = chan(net, 0, 1), b = chan(net, 1, 2);
  cdg.mark_channel_used(a);
  EXPECT_TRUE(cdg.try_use_edge(a, b));          // first use: marked
  EXPECT_TRUE(cdg.edge_used(idx.edge_id(a, b)));
  const auto before = cdg.stats().fast_accepts;
  EXPECT_TRUE(cdg.try_use_edge(a, b));          // condition (b): O(1)
  EXPECT_EQ(cdg.stats().fast_accepts, before + 1);
}

TEST(CompleteCdg, BlocksRingClosingEdge) {
  Network net = make_ring(4, 0);
  CdgIndex idx(net);
  CompleteCdg cdg(net, idx);
  cdg.mark_channel_used(chan(net, 0, 1));
  for (NodeId v = 0; v < 3; ++v) {
    EXPECT_TRUE(cdg.try_use_edge(chan(net, v, v + 1),
                                 chan(net, v + 1, (v + 2) % 4)));
  }
  // 3->0 then 0->1 closes the dependency ring: must be blocked.
  EXPECT_FALSE(cdg.try_use_edge(chan(net, 3, 0), chan(net, 0, 1)));
  EXPECT_TRUE(cdg.edge_blocked(
      idx.edge_id(chan(net, 3, 0), chan(net, 0, 1))));
  // Condition (a): the repeated query is O(1) and still false.
  EXPECT_FALSE(cdg.try_use_edge(chan(net, 3, 0), chan(net, 0, 1)));
}

TEST(CompleteCdg, MergeOfDisjointSubgraphsNeedsNoSearch) {
  Network net = make_ring(6, 0);
  CdgIndex idx(net);
  CompleteCdg cdg(net, idx);
  // Two disjoint used chains.
  cdg.mark_channel_used(chan(net, 0, 1));
  ASSERT_TRUE(cdg.try_use_edge(chan(net, 0, 1), chan(net, 1, 2)));
  cdg.mark_channel_used(chan(net, 3, 4));
  ASSERT_TRUE(cdg.try_use_edge(chan(net, 3, 4), chan(net, 4, 5)));
  const auto searches_before = cdg.stats().dfs_searches;
  // Connecting them (condition (c)) must not run a DFS.
  EXPECT_TRUE(cdg.try_use_edge(chan(net, 1, 2), chan(net, 2, 3)));
  EXPECT_TRUE(cdg.try_use_edge(chan(net, 2, 3), chan(net, 3, 4)));
  EXPECT_EQ(cdg.stats().dfs_searches, searches_before);
}

TEST(CompleteCdg, ConditionDRunsSearchWithinComponent) {
  Network net = make_paper_ring();
  CdgIndex idx(net);
  CompleteCdg cdg(net, idx);
  // Build the used chain n1->n2->n3->n5 (one component).
  cdg.mark_channel_used(chan(net, 0, 1));
  ASSERT_TRUE(cdg.try_use_edge(chan(net, 0, 1), chan(net, 1, 2)));
  ASSERT_TRUE(cdg.try_use_edge(chan(net, 1, 2), chan(net, 2, 4)));
  const auto before = cdg.stats().dfs_searches;
  // n3->n4 then... use (c_{n2,n3}, c_{n3,n4}): channels in same component?
  // c_{n2,n3} used; c_{n3,n4} unused -> condition (c), no search.
  ASSERT_TRUE(cdg.try_use_edge(chan(net, 1, 2), chan(net, 2, 3)));
  EXPECT_EQ(cdg.stats().dfs_searches, before);
  // (c_{n3,n4}, c_{n4,n5}) joins two used channels: c_{n4,n5} unused still
  // -> no search. Then (c_{n4,n5}, c_{n5,n1}): c_{n5,n1} unused -> no
  // search. Finally (c_{n5,n1}, c_{n1,n2}) hits the same component both
  // sides: condition (d) DFS, and it finds a cycle -> blocked.
  ASSERT_TRUE(cdg.try_use_edge(chan(net, 2, 3), chan(net, 3, 4)));
  ASSERT_TRUE(cdg.try_use_edge(chan(net, 3, 4), chan(net, 4, 0)));
  EXPECT_FALSE(cdg.try_use_edge(chan(net, 4, 0), chan(net, 0, 1)));
  EXPECT_GT(cdg.stats().dfs_searches, before);
}

TEST(CompleteCdg, SwitchFeasibleRejectsCombinedCycle) {
  Network net = make_ring(4, 0);
  CdgIndex idx(net);
  CompleteCdg cdg(net, idx);
  // Used chain: (0->1) -> (1->2) -> (2->3).
  cdg.mark_channel_used(chan(net, 0, 1));
  ASSERT_TRUE(cdg.try_use_edge(chan(net, 0, 1), chan(net, 1, 2)));
  ASSERT_TRUE(cdg.try_use_edge(chan(net, 1, 2), chan(net, 2, 3)));
  // Switching to c_new = (3->0) with inbound (2->3) and out-star {(0->1)}
  // would close the ring: infeasible.
  EXPECT_FALSE(cdg.switch_feasible(chan(net, 2, 3), chan(net, 3, 0),
                                   {chan(net, 0, 1)}));
  // Without the out edge it is fine.
  EXPECT_TRUE(cdg.switch_feasible(chan(net, 2, 3), chan(net, 3, 0), {}));
}

TEST(CompleteCdg, SwitchFeasibleStar) {
  Network net = make_ring(4, 0);
  CdgIndex idx(net);
  CompleteCdg cdg(net, idx);
  cdg.mark_channel_used(chan(net, 1, 2));
  ASSERT_TRUE(cdg.try_use_edge(chan(net, 1, 2), chan(net, 2, 3)));
  ASSERT_TRUE(cdg.try_use_edge(chan(net, 2, 3), chan(net, 3, 0)));
  ASSERT_TRUE(cdg.try_use_edge(chan(net, 3, 0), chan(net, 0, 1)));
  // Star around (0->1) reaching (1->2) closes the ring via used edges.
  EXPECT_FALSE(cdg.switch_feasible_star(chan(net, 0, 1), {chan(net, 1, 2)}));
}

}  // namespace
}  // namespace nue

// --- per-step lifecycle (transient-mark purge, Definition 4 semantics) ---

namespace nue {
namespace step_tests {

ChannelId chan2(const Network& net, NodeId a, NodeId b) {
  for (ChannelId c : net.out(a)) {
    if (net.dst(c) == b) return c;
  }
  return kInvalidChannel;
}

TEST(CompleteCdgSteps, PurgeRemovesUnkeptMarks) {
  Network net = test::make_ring(6, 0);
  CdgIndex idx(net);
  CompleteCdg cdg(net, idx);
  cdg.begin_step();
  const ChannelId a = chan2(net, 0, 1), b = chan2(net, 1, 2),
                  c = chan2(net, 2, 3);
  cdg.mark_channel_used(a);
  ASSERT_TRUE(cdg.try_use_edge(a, b));
  ASSERT_TRUE(cdg.try_use_edge(b, c));
  std::vector<std::uint8_t> keep(idx.num_edges(), 0);
  keep[idx.edge_id(a, b)] = 1;  // keep only the first dependency
  cdg.end_step(keep.data());
  EXPECT_TRUE(cdg.edge_used(idx.edge_id(a, b)));
  EXPECT_FALSE(cdg.edge_used(idx.edge_id(b, c)));
  EXPECT_TRUE(cdg.channel_used(a));
  EXPECT_TRUE(cdg.channel_used(b));
  EXPECT_FALSE(cdg.channel_used(c));  // no incident kept dependency
}

TEST(CompleteCdgSteps, ForcedEscapeEdgesSurviveEveryPurge) {
  Network net = test::make_ring(6, 0);
  CdgIndex idx(net);
  CompleteCdg cdg(net, idx);
  const ChannelId a = chan2(net, 0, 1), b = chan2(net, 1, 2);
  cdg.force_edge_used(a, b);
  std::vector<std::uint8_t> keep(idx.num_edges(), 0);
  for (int step = 0; step < 3; ++step) {
    cdg.begin_step();
    cdg.end_step(keep.data());
  }
  EXPECT_TRUE(cdg.edge_used(idx.edge_id(a, b)));
}

TEST(CompleteCdgSteps, PurgedEdgeCanBeReusedNextStep) {
  Network net = test::make_ring(4, 0);
  CdgIndex idx(net);
  CompleteCdg cdg(net, idx);
  std::vector<std::uint8_t> keep(idx.num_edges(), 0);
  const ChannelId a = chan2(net, 0, 1), b = chan2(net, 1, 2);
  cdg.begin_step();
  cdg.mark_channel_used(a);
  ASSERT_TRUE(cdg.try_use_edge(a, b));
  cdg.end_step(keep.data());  // dropped
  cdg.begin_step();
  cdg.mark_channel_used(a);
  EXPECT_TRUE(cdg.try_use_edge(a, b));  // usable again
}

TEST(CompleteCdgSteps, StickyBlockedPersistsWhenEnabled) {
  Network net = test::make_ring(4, 0);
  CdgIndex idx(net);
  for (bool sticky : {false, true}) {
    CompleteCdg cdg(net, idx);
    cdg.set_keep_blocked(sticky);
    std::vector<std::uint8_t> keep(idx.num_edges(), 0);
    cdg.begin_step();
    // Build the 4-ring dependency cycle minus one edge, then block it.
    cdg.mark_channel_used(chan2(net, 0, 1));
    for (NodeId v = 0; v < 3; ++v) {
      ASSERT_TRUE(cdg.try_use_edge(chan2(net, v, v + 1),
                                   chan2(net, v + 1, (v + 2) % 4)));
    }
    ASSERT_FALSE(cdg.try_use_edge(chan2(net, 3, 0), chan2(net, 0, 1)));
    const auto blocked_edge = idx.edge_id(chan2(net, 3, 0), chan2(net, 0, 1));
    EXPECT_TRUE(cdg.edge_blocked(blocked_edge));
    cdg.end_step(keep.data());  // nothing kept: the cycle-inducing context is gone
    EXPECT_EQ(cdg.edge_blocked(blocked_edge), sticky);
  }
}

}  // namespace step_tests
}  // namespace nue
