// Wave-scheduler tests (src/resilience/waves.hpp, docs/RESILIENCE.md):
// the dependency-safe migration schedule that turns a failed union-CDG
// gate into a chain of hitless swaps. Fixture-level tests drive the
// textbook incompatible pair (the ring dateline shift) straight through
// schedule_waves/blend_tables; manager-level tests prove the whole
// apply() chain — intermediate epochs, log records, determinism across
// worker-thread counts — on a drawn churn trace that is known to force
// gate failures.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "resilience/resilience.hpp"
#include "resilience/waves.hpp"
#include "routing/dump.hpp"
#include "routing/validate.hpp"
#include "test_helpers.hpp"
#include "topology/faults.hpp"
#include "topology/torus.hpp"

namespace nue {
namespace {

using test::make_ring;

ChannelId chan(const Network& net, NodeId a, NodeId b) {
  for (ChannelId c : net.out(a)) {
    if (net.dst(c) == b) return c;
  }
  ADD_FAILURE() << "no channel " << a << "->" << b;
  return kInvalidChannel;
}

/// Clockwise per-hop routing on a ring with a 2-VL dateline at `rot` —
/// the same fixture as test_validate.cpp's UnionCdgGate tests: every
/// placement is deadlock-free on its own, but two placements' union
/// closes the ring cycle on VL 0, so the direct gate rejects the pair.
RoutingResult ring_dateline_routing(const Network& net, NodeId rot) {
  const std::vector<NodeId> dests = net.terminals();
  const auto n = static_cast<NodeId>(net.num_nodes() - dests.size());
  RoutingResult rr(net.num_nodes(), dests, 2, VlMode::kPerHop);
  const auto turn = [&](NodeId v) { return (v + n - rot) % n; };
  for (std::size_t di = 0; di < dests.size(); ++di) {
    const NodeId d = dests[di];
    const NodeId dsw = net.terminal_switch(d);
    for (NodeId v = 0; v < net.num_nodes(); ++v) {
      if (v == d) continue;
      if (net.is_terminal(v)) {
        rr.set_next(v, di, net.out(v)[0]);
        rr.set_hop_vl(v, di, 0);
      } else if (v == dsw) {
        rr.set_next(v, di, chan(net, v, d));
        rr.set_hop_vl(v, di, 0);
      } else {
        rr.set_next(v, di, chan(net, v, (v + 1) % n));
        rr.set_hop_vl(v, di, turn(v) > turn(dsw) ? 0 : 1);
      }
    }
  }
  return rr;
}

bool tables_equal(const Network& net, const RoutingResult& a,
                  const RoutingResult& b) {
  if (a.destinations() != b.destinations()) return false;
  for (std::size_t di = 0; di < a.destinations().size(); ++di) {
    const NodeId d = a.destinations()[di];
    const auto di32 = static_cast<std::uint32_t>(di);
    for (NodeId v = 0; v < net.num_nodes(); ++v) {
      if (v == d) continue;
      if (a.next(v, di32) != b.next(v, di32)) return false;
      if (a.vl(v, v, di32) != b.vl(v, v, di32)) return false;
    }
  }
  return true;
}

/// A real incompatible pair, harvested from the churn trace the manager
/// tests replay: the fabric state plus the committed tables on both sides
/// of the first transition the union gate rejected but the wave scheduler
/// staged. Everything is deterministic (seed 29), so the harvest is a
/// stable fixture, not a flaky probe.
struct HarvestedPair {
  Network net;
  RoutingResult old_rr;
  RoutingResult new_rr;
};

HarvestedPair harvest_gate_failure() {
  TorusSpec spec{{3, 3}, 1, 1};
  Network net = make_torus(spec);
  const FaultTrace trace =
      draw_fault_trace(net, "torus:3x3:1", 29, 300, 0.5);
  resilience::RepairPolicy policy;
  policy.engine = resilience::Engine::kNue;
  policy.vls = 2;
  policy.max_vls = 4;
  policy.seed = 29;
  resilience::ResilienceManager mgr(std::move(net), policy);
  for (const FaultEvent& e : trace.events) {
    const std::shared_ptr<const RoutingResult> before = mgr.table();
    const TransitionRecord rec = mgr.apply(e);
    if (rec.wave_count > 0) {
      // The chain's final table is byte-identical to the candidate the
      // gate rejected against `before`, so (before, final) reproduces
      // the scheduling problem the manager just solved.
      return HarvestedPair{mgr.net(), *before, *mgr.table()};
    }
  }
  ADD_FAILURE() << "trace no longer exercises the wave scheduler";
  Network empty = make_torus(spec);
  RoutingResult rr(empty.num_nodes(), empty.terminals(), 1,
                   VlMode::kPerDest);
  return HarvestedPair{std::move(empty), rr, rr};
}

TEST(WaveScheduler, SchedulesARealGateFailure) {
  const HarvestedPair pair = harvest_gate_failure();
  const Network& net = pair.net;
  const RoutingResult& old_rr = pair.old_rr;
  const RoutingResult& new_rr = pair.new_rr;
  ASSERT_FALSE(union_cdg_acyclic(net, old_rr, new_rr))
      << "harvested pair must fail the direct gate";

  const resilience::WavePlan plan =
      resilience::schedule_waves(net, old_rr, new_rr, 8);
  ASSERT_TRUE(plan.ok()) << plan.failure;
  // A 1-wave schedule would BE the failed direct union.
  ASSERT_GE(plan.waves.size(), 2u);
  EXPECT_LE(plan.waves.size(), 8u);
  EXPECT_GT(plan.changed_dests, 0u);

  // Every changed destination migrates exactly once.
  std::set<NodeId> seen;
  std::size_t scheduled = 0;
  for (const auto& wave : plan.waves) {
    EXPECT_FALSE(wave.empty());
    for (NodeId d : wave) {
      EXPECT_TRUE(seen.insert(d).second) << "destination " << d
                                         << " scheduled twice";
      ++scheduled;
    }
  }
  EXPECT_EQ(scheduled, plan.changed_dests);

  // Walk the chain: every adjacent pair of intermediate tables (old ->
  // blend_1 -> ... -> new) must pass the production union gate the
  // direct pair failed.
  std::vector<std::uint8_t> take_new(new_rr.destinations().size(), 0);
  RoutingResult prev = old_rr;
  for (std::size_t w = 0; w < plan.waves.size(); ++w) {
    for (NodeId d : plan.waves[w]) take_new[new_rr.dest_index(d)] = 1;
    RoutingResult cur =
        w + 1 == plan.waves.size()
            ? new_rr
            : resilience::blend_tables(net, old_rr, new_rr, take_new);
    EXPECT_TRUE(union_cdg_acyclic(net, prev, cur))
        << "wave " << w + 1 << " union has a cycle";
    prev = std::move(cur);
  }
}

TEST(WaveScheduler, BlendWithEverythingMigratedIsTheNewTable) {
  Network net = make_ring(5);
  const RoutingResult old_rr = ring_dateline_routing(net, 0);
  const RoutingResult new_rr = ring_dateline_routing(net, 2);
  const std::vector<std::uint8_t> all(new_rr.destinations().size(), 1);
  const RoutingResult blend =
      resilience::blend_tables(net, old_rr, new_rr, all);
  EXPECT_TRUE(tables_equal(net, blend, new_rr));
  const std::vector<std::uint8_t> none(new_rr.destinations().size(), 0);
  const RoutingResult keep =
      resilience::blend_tables(net, old_rr, new_rr, none);
  EXPECT_TRUE(tables_equal(net, keep, old_rr));
}

TEST(WaveScheduler, ReportsBudgetExhaustionDistinctly) {
  Network net = make_ring(6);
  const RoutingResult old_rr = ring_dateline_routing(net, 0);
  const RoutingResult new_rr = ring_dateline_routing(net, 3);
  const resilience::WavePlan plan =
      resilience::schedule_waves(net, old_rr, new_rr, 1);
  EXPECT_FALSE(plan.ok());
  EXPECT_TRUE(plan.waves.empty());
  EXPECT_NE(plan.failure.find("wave budget"), std::string::npos)
      << plan.failure;
}

TEST(WaveScheduler, RejectsVlModeMismatch) {
  Network net = make_ring(4);
  const RoutingResult per_hop = ring_dateline_routing(net, 0);
  RoutingResult per_dest(net.num_nodes(), net.terminals(), 2,
                         VlMode::kPerDest);
  const resilience::WavePlan plan =
      resilience::schedule_waves(net, per_hop, per_dest, 8);
  EXPECT_FALSE(plan.ok());
  EXPECT_NE(plan.failure.find("vl-mode"), std::string::npos) << plan.failure;
}

TEST(WaveScheduler, DatelineShiftFallsBackWithDistinctVerdict) {
  // The textbook ring dateline shift is the scheduler's documented limit:
  // a migrating column keeps its old dependencies through its own wave,
  // so no per-column order can rotate a dateline — every candidate closes
  // the ring on one of the two layers. The scheduler must say so
  // distinctly ("stuck"), which is what routes the manager to the drained
  // fallback instead of silently committing an unsafe union.
  Network net = make_ring(6);
  const RoutingResult old_rr = ring_dateline_routing(net, 0);
  const RoutingResult new_rr = ring_dateline_routing(net, 3);
  ASSERT_TRUE(validate_routing(net, old_rr).ok());
  ASSERT_TRUE(validate_routing(net, new_rr).ok());
  ASSERT_FALSE(union_cdg_acyclic(net, old_rr, new_rr));
  const resilience::WavePlan plan =
      resilience::schedule_waves(net, old_rr, new_rr, 8);
  EXPECT_FALSE(plan.ok());
  EXPECT_TRUE(plan.waves.empty());
  EXPECT_NE(plan.failure.find("stuck"), std::string::npos) << plan.failure;
}

TEST(WaveScheduler, VlShiftMakesAnyPairCompatible) {
  // The escape hatch behind zero-drain storms: even the unschedulable
  // dateline pair becomes a legal 2-epoch chain once the candidate is
  // shifted into disjoint lanes — both adjacent unions are acyclic
  // because they share no (channel, VL) vertex.
  Network net = make_ring(6);
  const RoutingResult old_rr = ring_dateline_routing(net, 0);
  const RoutingResult new_rr = ring_dateline_routing(net, 3);
  ASSERT_FALSE(union_cdg_acyclic(net, old_rr, new_rr));
  const RoutingResult shifted =
      resilience::shift_vls(net, new_rr, old_rr.num_vls());
  EXPECT_EQ(shifted.num_vls(), old_rr.num_vls() + new_rr.num_vls());
  EXPECT_TRUE(validate_routing(net, shifted).ok());
  EXPECT_TRUE(union_cdg_acyclic(net, old_rr, shifted));
  EXPECT_TRUE(union_cdg_acyclic(net, shifted, new_rr));
  // Routes are untouched — only the lanes move.
  for (std::size_t di = 0; di < new_rr.destinations().size(); ++di) {
    const NodeId d = new_rr.destinations()[di];
    const auto di32 = static_cast<std::uint32_t>(di);
    for (NodeId v = 0; v < net.num_nodes(); ++v) {
      if (v == d) continue;
      ASSERT_EQ(shifted.next(v, di32), new_rr.next(v, di32));
      ASSERT_EQ(shifted.vl(v, v, di32), new_rr.vl(v, v, di32) + 2);
    }
  }
}

TEST(WaveScheduler, ScheduleIsDeterministic) {
  const HarvestedPair pair = harvest_gate_failure();
  const resilience::WavePlan a =
      resilience::schedule_waves(pair.net, pair.old_rr, pair.new_rr, 8);
  const resilience::WavePlan b =
      resilience::schedule_waves(pair.net, pair.old_rr, pair.new_rr, 8);
  ASSERT_TRUE(a.ok()) << a.failure;
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.waves, b.waves);
  EXPECT_EQ(a.changed_dests, b.changed_dests);
  EXPECT_EQ(a.max_affected_wave, b.max_affected_wave);
}

// --- manager-level: the multi-epoch apply() chain ---------------------------

/// One churn replay at the given worker-thread count, recording per-epoch
/// evidence: the final table dump plus a line per committed record.
struct ChurnRun {
  std::vector<std::string> record_lines;
  std::string final_dump;
  std::size_t wave_chains = 0;
  std::size_t drains = 0;
};

ChurnRun run_churn(std::uint32_t threads, std::size_t events) {
  TorusSpec spec{{3, 3}, 1, 1};
  Network net = make_torus(spec);
  const FaultTrace trace =
      draw_fault_trace(net, "torus:3x3:1", 29, events, 0.5);
  resilience::RepairPolicy policy;
  policy.engine = resilience::Engine::kNue;
  policy.vls = 2;
  policy.max_vls = 4;
  policy.seed = 29;
  policy.num_threads = threads;
  resilience::ResilienceManager mgr(std::move(net), policy);
  ChurnRun run;
  for (const FaultEvent& e : trace.events) {
    const TransitionRecord rec = mgr.apply(e);
    if (rec.wave_count > 0) ++run.wave_chains;
    if (rec.drained) ++run.drains;
  }
  for (const TransitionRecord& r : mgr.log().records()) {
    std::ostringstream os;
    os << r.epoch << " " << r.event << " " << r.committed_step << " "
       << r.hitless << r.drained << " " << r.wave_index << "/"
       << r.wave_count;
    run.record_lines.push_back(os.str());
  }
  std::ostringstream dump;
  write_forwarding_tables(dump, mgr.net(), *mgr.table());
  run.final_dump = dump.str();
  return run;
}

TEST(WaveScheduler, ManagerChainIsDeterministicAcrossThreadCounts) {
  // The same trace that the churn regression runs: seed 29 on torus:3x3:1
  // forces union-gate failures within the first few hundred events, so
  // this exercises real wave chains, not just the hitless fast path. The
  // PR-1 determinism contract extends to the wave path: identical epoch/
  // record sequences and a byte-identical final table at any thread
  // count.
  const ChurnRun one = run_churn(1, 300);
  ASSERT_GT(one.wave_chains, 0u)
      << "trace no longer exercises the wave scheduler";
  for (std::uint32_t threads : {4u, 8u}) {
    const ChurnRun other = run_churn(threads, 300);
    EXPECT_EQ(other.record_lines, one.record_lines) << threads << " threads";
    EXPECT_EQ(other.final_dump, one.final_dump) << threads << " threads";
    EXPECT_EQ(other.wave_chains, one.wave_chains);
    EXPECT_EQ(other.drains, one.drains);
  }
}

TEST(WaveScheduler, ResyncConvergesToOfflineRecompute) {
  // resync() after churn must land byte-identical to a fresh manager
  // built on an identically mutated fabric — the storm bench's
  // convergence anchor.
  TorusSpec spec{{3, 3}, 1, 1};
  Network net = make_torus(spec);
  const FaultTrace trace = draw_fault_trace(net, "torus:3x3:1", 41, 60, 0.5);
  resilience::RepairPolicy policy;
  policy.engine = resilience::Engine::kNue;
  policy.vls = 2;
  policy.max_vls = 4;
  policy.seed = 41;
  resilience::ResilienceManager mgr(net, policy);
  for (const FaultEvent& e : trace.events) mgr.apply(e);
  const TransitionRecord rec = mgr.resync();
  EXPECT_EQ(rec.event, "resync");
  EXPECT_TRUE(rec.hitless || rec.drained);

  Network offline = make_torus(spec);
  for (const FaultEvent& e : trace.events) apply_fault_event(offline, e);
  resilience::ResilienceManager fresh(std::move(offline), policy);
  std::ostringstream live_dump, fresh_dump;
  write_forwarding_tables(live_dump, mgr.net(), *mgr.table());
  write_forwarding_tables(fresh_dump, fresh.net(), *fresh.table());
  EXPECT_EQ(live_dump.str(), fresh_dump.str());
}

TEST(WaveScheduler, DisabledPolicyDrainsExactlyWhereWavesSaved) {
  // The baseline the bench records: with enable_waves off, every chain
  // the scheduler would have staged becomes a logged drain. Same trace,
  // two managers, differential.
  TorusSpec spec{{3, 3}, 1, 1};
  Network net = make_torus(spec);
  const FaultTrace trace =
      draw_fault_trace(net, "torus:3x3:1", 29, 300, 0.5);
  resilience::RepairPolicy waves_on;
  waves_on.engine = resilience::Engine::kNue;
  waves_on.vls = 2;
  waves_on.max_vls = 4;
  waves_on.seed = 29;
  resilience::RepairPolicy waves_off = waves_on;
  waves_off.enable_waves = false;
  resilience::ResilienceManager on(net, waves_on);
  resilience::ResilienceManager off(net, waves_off);
  std::size_t saved = 0, drained_on = 0, drained_off = 0;
  for (const FaultEvent& e : trace.events) {
    const TransitionRecord ron = on.apply(e);
    const TransitionRecord roff = off.apply(e);
    if (ron.wave_count > 0) ++saved;
    if (ron.drained) ++drained_on;
    if (roff.drained) ++drained_off;
    EXPECT_FALSE(ron.drained && ron.wave_count > 0)
        << "a record cannot be both waved and drained";
  }
  ASSERT_GT(saved, 0u) << "trace no longer exercises the wave scheduler";
  EXPECT_EQ(drained_on, 0u)
      << "every gate failure on this trace should be wave-schedulable";
  EXPECT_GE(drained_off, saved)
      << "with waves off, each saved chain must fall back to a drain";
  EXPECT_EQ(off.log().summarize().waved, 0u);
  EXPECT_EQ(on.log().summarize().waved, saved);
}

}  // namespace
}  // namespace nue
