// Differential property test of the ω engine (CompleteCdg): under random
// sequences of dependency-use attempts, the set of used edges must always
// form a DAG (checked against an independent reference), and the engine's
// accept/reject answers must match the reference's cycle prediction.
#include <gtest/gtest.h>

#include <vector>

#include "nue/complete_cdg.hpp"
#include "routing/cdg_index.hpp"
#include "routing/validate.hpp"
#include "topology/misc_topologies.hpp"
#include "topology/torus.hpp"
#include "util/rng.hpp"

namespace nue {
namespace {

/// Reference: adjacency over channels, acyclicity via is_acyclic().
struct ReferenceDag {
  std::vector<std::vector<std::uint32_t>> adj;

  explicit ReferenceDag(std::size_t n) : adj(n) {}

  bool would_stay_acyclic(ChannelId a, ChannelId b) const {
    auto copy = adj;
    copy[a].push_back(b);
    return is_acyclic(copy);
  }

  void add(ChannelId a, ChannelId b) { adj[a].push_back(b); }
};

class CompleteCdgProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(CompleteCdgProperty, MatchesReferenceUnderRandomUseSequences) {
  Rng rng(GetParam());
  RandomSpec spec{10, 22, 0};
  Network net = make_random(spec, rng);
  CdgIndex idx(net);
  CompleteCdg cdg(net, idx);
  ReferenceDag ref(net.num_channels());

  // Start from a random used channel.
  std::vector<ChannelId> used_channels;
  {
    const auto c = static_cast<ChannelId>(rng.next_below(net.num_channels()));
    cdg.mark_channel_used(c);
    used_channels.push_back(c);
  }
  int accepted = 0, rejected = 0;
  for (int step = 0; step < 600; ++step) {
    // Pick a random used channel and one of its complete-CDG successors.
    const ChannelId c1 =
        used_channels[rng.next_below(used_channels.size())];
    const auto succ = idx.successors(c1);
    if (succ.empty()) continue;
    const ChannelId c2 = succ[rng.next_below(succ.size())];
    const auto eid = idx.edge_id(c1, c2);
    ASSERT_NE(eid, CdgIndex::kNoEdge);

    const bool already_used = cdg.edge_used(eid);
    const bool already_blocked = cdg.edge_blocked(eid);
    const bool ref_ok = already_used || ref.would_stay_acyclic(c1, c2);
    const bool got = cdg.try_use_edge(c1, c2);

    if (already_blocked) {
      // Sticky restriction: must still reject, and the reference must
      // agree that the edge once closed a cycle (it may have been into a
      // graph that has since grown, so ref_ok can differ — blocked wins).
      EXPECT_FALSE(got);
      ++rejected;
      continue;
    }
    EXPECT_EQ(got, ref_ok) << "step " << step;
    if (got) {
      ++accepted;
      if (!already_used) {
        ref.add(c1, c2);
        if (std::find(used_channels.begin(), used_channels.end(), c2) ==
            used_channels.end()) {
          used_channels.push_back(c2);
        }
      }
      EXPECT_TRUE(is_acyclic(ref.adj));
    } else {
      ++rejected;
      EXPECT_TRUE(cdg.edge_blocked(eid));
    }
  }
  // The workload must have exercised both outcomes to be meaningful.
  EXPECT_GT(accepted, 0);
  EXPECT_GT(rejected, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompleteCdgProperty,
                         ::testing::Range<std::uint64_t>(0, 8));

TEST(CompleteCdgProperty, SwitchFeasibleAgreesWithCommitOutcome) {
  // If switch_feasible says yes, committing must keep the used subgraph
  // acyclic (checked via the blocked/used invariants plus a reference).
  Rng rng(99);
  TorusSpec spec{{3, 3}, 0, 1};
  Network net = make_torus(spec);
  CdgIndex idx(net);
  for (int trial = 0; trial < 30; ++trial) {
    CompleteCdg cdg(net, idx);
    ReferenceDag ref(net.num_channels());
    // Grow a random used DAG.
    std::vector<ChannelId> used;
    const auto c0 = static_cast<ChannelId>(rng.next_below(net.num_channels()));
    cdg.mark_channel_used(c0);
    used.push_back(c0);
    for (int i = 0; i < 40; ++i) {
      const ChannelId c1 = used[rng.next_below(used.size())];
      const auto succ = idx.successors(c1);
      if (succ.empty()) continue;
      const ChannelId c2 = succ[rng.next_below(succ.size())];
      if (cdg.edge_used(idx.edge_id(c1, c2))) continue;
      if (cdg.try_use_edge(c1, c2)) {
        ref.add(c1, c2);
        if (std::find(used.begin(), used.end(), c2) == used.end()) {
          used.push_back(c2);
        }
      }
    }
    // Random switch attempt.
    const ChannelId c_in = used[rng.next_below(used.size())];
    const auto succ = idx.successors(c_in);
    if (succ.empty()) continue;
    const ChannelId c_new = succ[rng.next_below(succ.size())];
    std::vector<ChannelId> outs;
    for (ChannelId o : idx.successors(c_new)) {
      if (rng.next_bool(0.5)) outs.push_back(o);
    }
    if (cdg.switch_feasible(c_in, c_new, outs)) {
      cdg.commit_switch(c_in, c_new, outs);
      auto copy = ref.adj;
      copy[c_in].push_back(c_new);
      for (ChannelId o : outs) copy[c_new].push_back(o);
      EXPECT_TRUE(is_acyclic(copy)) << "trial " << trial;
    }
  }
}

}  // namespace
}  // namespace nue

namespace nue {
namespace invariant_tests {

TEST(CompleteCdgInvariants, HoldThroughRandomStepLifecycles) {
  Rng rng(31);
  RandomSpec spec{12, 30, 0};
  Network net = make_random(spec, rng);
  CdgIndex idx(net);
  CompleteCdg cdg(net, idx);
  std::vector<std::uint8_t> keep(idx.num_edges(), 0);
  std::vector<ChannelId> used{
      static_cast<ChannelId>(rng.next_below(net.num_channels()))};
  cdg.mark_channel_used(used[0]);
  for (int step = 0; step < 20; ++step) {
    cdg.begin_step();
    std::vector<CdgIndex::EdgeId> marked;
    for (int i = 0; i < 60; ++i) {
      const ChannelId c1 = used[rng.next_below(used.size())];
      const auto succ = idx.successors(c1);
      if (succ.empty()) continue;
      const ChannelId c2 = succ[rng.next_below(succ.size())];
      // Precondition of Algorithm 3: the tail channel is used (in the
      // router it is the popped channel of the current path; after a
      // purge the test must re-establish it like seed_search does).
      cdg.mark_channel_used(c1);
      if (cdg.try_use_edge(c1, c2)) {
        marked.push_back(idx.edge_id(c1, c2));
        if (std::find(used.begin(), used.end(), c2) == used.end()) {
          used.push_back(c2);
        }
      }
      ASSERT_TRUE(cdg.check_invariants()) << "step " << step;
    }
    // Keep a random half of this step's marks.
    std::vector<CdgIndex::EdgeId> kept;
    for (const auto e : marked) {
      if (rng.next_bool(0.5)) {
        keep[e] = 1;
        kept.push_back(e);
      }
    }
    cdg.end_step(keep.data());
    for (const auto e : kept) keep[e] = 0;
    ASSERT_TRUE(cdg.check_invariants()) << "after end_step " << step;
  }
}

TEST(CompleteCdgInvariants, StickyBlockedVariantAlsoHolds) {
  Rng rng(32);
  TorusSpec spec{{3, 3}, 0, 1};
  Network net = make_torus(spec);
  CdgIndex idx(net);
  CompleteCdg cdg(net, idx);
  cdg.set_keep_blocked(true);
  std::vector<std::uint8_t> keep(idx.num_edges(), 0);
  std::vector<ChannelId> used{0};
  cdg.mark_channel_used(0);
  for (int step = 0; step < 10; ++step) {
    cdg.begin_step();
    for (int i = 0; i < 40; ++i) {
      const ChannelId c1 = used[rng.next_below(used.size())];
      const auto succ = idx.successors(c1);
      if (succ.empty()) continue;
      const ChannelId c2 = succ[rng.next_below(succ.size())];
      cdg.mark_channel_used(c1);
      if (cdg.try_use_edge(c1, c2) &&
          std::find(used.begin(), used.end(), c2) == used.end()) {
        used.push_back(c2);
      }
    }
    cdg.end_step(keep.data());  // keep nothing; blocked marks persist
    ASSERT_TRUE(cdg.check_invariants()) << "step " << step;
  }
}

}  // namespace invariant_tests
}  // namespace nue
