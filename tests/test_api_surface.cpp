// Coverage for the smaller public APIs not exercised elsewhere: Network
// accessors, pseudo_center, the direct k-way partitioner entry point, and
// edge cases of the routing-result helpers.
#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "partition/partition.hpp"
#include "routing/dfsssp.hpp"
#include "routing/updown.hpp"
#include "test_helpers.hpp"
#include "topology/misc_topologies.hpp"
#include "topology/torus.hpp"
#include "util/rng.hpp"

namespace nue {
namespace {

using test::make_line;
using test::make_ring;

TEST(NetworkApi, MaxDegreeAndCollections) {
  Network net = make_ring(4, 3);  // switches have degree 2 + 3 terminals
  EXPECT_EQ(net.max_degree(), 5u);
  EXPECT_EQ(net.alive_nodes().size(), net.num_alive_nodes());
  EXPECT_EQ(net.alive_channels().size(), net.num_alive_channels());
  net.remove_node(0);
  EXPECT_EQ(net.alive_nodes().size(), net.num_alive_nodes());
  for (ChannelId c : net.alive_channels()) {
    EXPECT_TRUE(net.channel_alive(c));
  }
}

TEST(NetworkApi, RemoveLinkNormalizesToEvenChannel) {
  Network net = make_line(2, 0);
  const std::size_t before = net.num_alive_channels();
  net.remove_link(1);  // odd id of the pair: both directions must die
  EXPECT_EQ(net.num_alive_channels(), before - 2);
  EXPECT_FALSE(net.channel_alive(0));
  EXPECT_FALSE(net.channel_alive(1));
}

TEST(NetworkApi, DoubleRemovalThrows) {
  Network net = make_line(2, 0);
  net.remove_link(0);
  EXPECT_THROW(net.remove_link(0), std::logic_error);
}

TEST(PseudoCenter, MiddleOfLine) {
  Network net = make_line(7, 1);
  const NodeId c = pseudo_center(net);
  // The midpoint of the 0..6 line is switch 3 (±1 for tie handling).
  EXPECT_GE(c, 2u);
  EXPECT_LE(c, 4u);
  EXPECT_TRUE(net.is_switch(c));
}

TEST(PseudoCenter, SurvivesDeadNodes) {
  Network net = make_ring(8, 1);
  net.remove_node(net.terminals()[0]);
  const NodeId c = pseudo_center(net);
  EXPECT_TRUE(net.node_alive(c));
  EXPECT_TRUE(net.is_switch(c));
}

TEST(KwayDirect, PartitionsSwitchGraph) {
  TorusSpec spec{{4, 4}, 1, 1};
  Network net = make_torus(spec);
  const auto switches = net.switches();
  std::vector<std::uint32_t> weights(switches.size(), 1);
  Rng rng(5);
  const auto part = kway_partition_switches(net, switches, weights, 4, rng);
  ASSERT_EQ(part.size(), switches.size());
  std::vector<std::size_t> sizes(4, 0);
  for (const auto p : part) {
    ASSERT_LT(p, 4u);
    ++sizes[p];
  }
  for (const auto sz : sizes) {
    EXPECT_GE(sz, 2u);  // 16 switches over 4 parts: roughly balanced
    EXPECT_LE(sz, 7u);
  }
}

TEST(RoutingResultApi, TraceThrowsOnNonDestination) {
  Network net = make_ring(4);
  const std::vector<NodeId> dests{net.terminals()[0]};
  const auto rr = route_minhop(net, dests);
  EXPECT_THROW(rr.trace(net, net.terminals()[1], net.terminals()[2]),
               std::logic_error);
}

TEST(RoutingResultApi, DestIndexRoundTrip) {
  Network net = make_ring(5);
  const auto dests = net.terminals();
  const auto rr = route_minhop(net, dests);
  for (std::size_t i = 0; i < dests.size(); ++i) {
    EXPECT_EQ(rr.dest_index(dests[i]), i);
    EXPECT_TRUE(rr.is_destination(dests[i]));
  }
  EXPECT_FALSE(rr.is_destination(0));  // switch 0 is not a destination
}

TEST(Algorithms, DijkstraFromNodeApi) {
  Network net = make_line(4, 0);
  std::vector<double> w(net.num_channels(), 1.0);
  const auto r = dijkstra(net, 1, w);
  EXPECT_DOUBLE_EQ(r.distance[3], 2.0);
  EXPECT_EQ(r.used_channel[0], reverse(net.out(0)[0]));
}

}  // namespace
}  // namespace nue
