// Adjacency-pool churn regression (ISSUE 7 satellite): the shared CSR
// pool behind Network::out(v) must survive thousands of mixed
// add/remove/restore operations — the fabric-manager daemon's steady
// state — without accounting drift, missed compaction, or segment
// corruption. Every batch is cross-checked against a shadow model that
// applies the documented order discipline (append on add/restore,
// swap-remove on erase) with plain per-node vectors.
//
// Two real bugs this suite was written against:
//   * compact() used to run *between* push_adj reserving a slot and
//     writing it; compaction shrinks capacities to lengths, so the append
//     then wrote into the next node's segment (or past the pool's end).
//   * the compaction trigger compared relocation holes against summed
//     capacity, which relocation grows in lockstep with the holes — the
//     condition could never fire, so remove/restore churn grew the pool
//     monotonically.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/network.hpp"
#include "test_helpers.hpp"
#include "topology/misc_topologies.hpp"
#include "util/rng.hpp"

namespace nue {
namespace {

/// Plain per-node adjacency vectors maintained with the exact discipline
/// network.hpp documents; the pool must match them element for element.
class ShadowAdjacency {
 public:
  explicit ShadowAdjacency(const Network& net) : out_(net.num_nodes()) {
    for (NodeId v = 0; v < net.num_nodes(); ++v) {
      const auto span = net.out(v);
      out_[v].assign(span.begin(), span.end());
    }
  }

  void add_pair(const Network& net, ChannelId even) {
    out_[net.src(even)].push_back(even);
    out_[net.src(even + 1)].push_back(even + 1);
  }

  void erase_pair(const Network& net, ChannelId even) {
    erase_one(net.src(even), even);
    erase_one(net.src(even + 1), even + 1);
  }

  const std::vector<ChannelId>& at(NodeId v) const { return out_[v]; }

  void expect_matches(const Network& net) const {
    for (NodeId v = 0; v < net.num_nodes(); ++v) {
      const auto span = net.out(v);
      ASSERT_EQ(span.size(), out_[v].size()) << "degree drift at node " << v;
      for (std::size_t i = 0; i < span.size(); ++i) {
        ASSERT_EQ(span[i], out_[v][i])
            << "adjacency entry " << i << " of node " << v << " drifted";
      }
    }
  }

 private:
  void erase_one(NodeId v, ChannelId c) {
    auto& vec = out_[v];
    const auto it = std::find(vec.begin(), vec.end(), c);
    ASSERT_NE(it, vec.end());
    *it = vec.back();  // swap-remove, matching erase_adj
    vec.pop_back();
  }

  std::vector<std::vector<ChannelId>> out_;
};

/// Kill node v the way Network::remove_node does (pop from the back of
/// its list), mirroring each removal into the shadow.
void shadow_remove_node(Network& net, ShadowAdjacency& shadow, NodeId v) {
  while (!shadow.at(v).empty()) {
    const ChannelId c = shadow.at(v).back() & ~1u;
    shadow.erase_pair(net, c);
  }
  net.remove_node(v);
}

TEST(NetworkChurn, MixedOperationsKeepPoolAndOrderIntact) {
  RandomSpec spec;
  spec.switches = 80;
  spec.links = 1200;
  spec.terminals_per_switch = 2;
  Rng topo_rng(17);
  Network net = make_random(spec, topo_rng);
  net.check_pool_invariants();
  ShadowAdjacency shadow(net);
  shadow.expect_matches(net);

  Rng rng(23);
  std::size_t compactions = 0;
  std::size_t prev_holes = net.pool_stats().holes;
  const auto note_compaction = [&] {
    const auto stats = net.pool_stats();
    if (stats.holes == 0 && prev_holes > 0) ++compactions;
    prev_holes = stats.holes;
  };

  for (int round = 0; round < 6000; ++round) {
    const std::uint64_t op = rng.next_u64() % 100;
    if (op < 45) {
      // Remove a random alive duplex link.
      std::vector<ChannelId> alive;
      for (ChannelId c = 0; c < net.num_channels(); c += 2) {
        if (net.channel_alive(c)) alive.push_back(c);
      }
      if (alive.empty()) continue;
      const ChannelId c = alive[rng.next_u64() % alive.size()];
      shadow.erase_pair(net, c);
      net.remove_link(c);
    } else if (op < 85) {
      // Restore a random dead pair whose endpoints are alive.
      std::vector<ChannelId> dead;
      for (ChannelId c = 0; c < net.num_channels(); c += 2) {
        if (!net.channel_alive(c) && net.node_alive(net.src(c)) &&
            net.node_alive(net.dst(c))) {
          dead.push_back(c);
        }
      }
      if (dead.empty()) continue;
      const ChannelId c = dead[rng.next_u64() % dead.size()];
      net.restore_link(c);
      shadow.add_pair(net, c);
    } else if (op < 92) {
      // Fresh link between two distinct alive switches (the pool keeps
      // growing segments while churn pokes holes elsewhere).
      const auto sws = net.switches();
      if (sws.size() < 2) continue;
      const NodeId u = sws[rng.next_u64() % sws.size()];
      const NodeId v = sws[rng.next_u64() % sws.size()];
      if (u == v) continue;
      const ChannelId c = net.add_link(u, v);
      shadow.add_pair(net, c);
    } else if (op < 96) {
      // Take a whole switch down.
      const auto sws = net.switches();
      if (sws.size() <= 2) continue;
      shadow_remove_node(net, shadow, sws[rng.next_u64() % sws.size()]);
    } else {
      // Bring a dead switch back, then revive its links that can return.
      std::vector<NodeId> dead;
      for (NodeId v = 0; v < net.num_nodes(); ++v) {
        if (net.is_switch(v) && !net.node_alive(v)) dead.push_back(v);
      }
      if (dead.empty()) continue;
      const NodeId v = dead[rng.next_u64() % dead.size()];
      net.restore_node(v);
      for (ChannelId c = 0; c < net.num_channels(); c += 2) {
        if (!net.channel_alive(c) && (net.src(c) == v || net.dst(c) == v) &&
            net.node_alive(net.src(c)) && net.node_alive(net.dst(c))) {
          net.restore_link(c);
          shadow.add_pair(net, c);
        }
      }
    }
    note_compaction();
    net.check_pool_invariants();
    if (round % 250 == 0) shadow.expect_matches(net);
  }
  shadow.expect_matches(net);
  net.check_pool_invariants();
  // The churn must have actually exercised compaction — with the broken
  // trigger this stayed 0 and the pool never shrank.
  EXPECT_GT(compactions, 0u);
}

TEST(NetworkChurn, SustainedRemovalCompactsThePool) {
  RandomSpec spec;
  spec.switches = 100;
  spec.links = 1500;
  spec.terminals_per_switch = 2;
  Rng topo_rng(3);
  Network net = make_random(spec, topo_rng);
  const std::size_t pristine_size = net.pool_stats().size;
  const std::size_t pristine_live = net.pool_stats().live;
  ShadowAdjacency shadow(net);

  // Kill the bulk of the switch-to-switch links: live entries collapse,
  // so the pool must give the dead space back instead of holding the
  // pristine footprint forever.
  Rng rng(7);
  std::vector<ChannelId> alive;
  for (ChannelId c = 0; c < net.num_channels(); c += 2) {
    if (net.channel_alive(c) && net.is_switch(net.src(c)) &&
        net.is_switch(net.dst(c))) {
      alive.push_back(c);
    }
  }
  std::size_t removed = 0;
  for (const ChannelId c : alive) {
    if (rng.next_u64() % 10 < 9) {
      shadow.erase_pair(net, c);
      net.remove_link(c);
      ++removed;
      net.check_pool_invariants();
    }
  }
  ASSERT_GT(removed, alive.size() / 2);
  const auto stats = net.pool_stats();
  EXPECT_LE(stats.size, 2 * stats.live + Network::kCompactSlack);
  EXPECT_LT(stats.size, pristine_size);
  shadow.expect_matches(net);

  // Restore everything: adjacency contents must come back exactly in
  // event order, and the pool regrows without tripping any invariant.
  for (ChannelId c = 0; c < net.num_channels(); c += 2) {
    if (!net.channel_alive(c)) {
      net.restore_link(c);
      shadow.add_pair(net, c);
      net.check_pool_invariants();
    }
  }
  shadow.expect_matches(net);
  EXPECT_EQ(net.pool_stats().live, pristine_live);
  EXPECT_EQ(net.num_alive_channels(), net.num_channels());
}

TEST(NetworkChurn, CompactionDuringRestoreKeepsSegmentsDisjoint) {
  // Aim churn at the historical crash: drive the pool just below the
  // compaction threshold with removals, then push_adj (via restore_link)
  // must relocate, cross the threshold, and compact — with the append
  // already landed. The shadow comparison catches the old in-pool
  // corruption even without ASan.
  Network net = test::make_ring(400, 2);
  ShadowAdjacency shadow(net);
  Rng rng(41);
  std::vector<ChannelId> ring;
  for (ChannelId c = 0; c < net.num_channels(); c += 2) {
    if (net.is_switch(net.src(c)) && net.is_switch(net.dst(c))) {
      ring.push_back(c);
    }
  }
  for (int sweep = 0; sweep < 8; ++sweep) {
    for (const ChannelId c : ring) {
      if (net.channel_alive(c) && rng.next_u64() % 4 != 0) {
        shadow.erase_pair(net, c);
        net.remove_link(c);
      }
    }
    net.check_pool_invariants();
    for (const ChannelId c : ring) {
      if (!net.channel_alive(c)) {
        net.restore_link(c);
        shadow.add_pair(net, c);
      }
    }
    net.check_pool_invariants();
    shadow.expect_matches(net);
  }
}

}  // namespace
}  // namespace nue
