// Fail-in-place scenario (the paper's motivation, Section 1): a 3D torus
// degrades link by link; topology-aware Torus-2QoS eventually becomes
// inapplicable while topology-agnostic Nue keeps routing with the same
// virtual-lane budget.
//
//   ./examples/fault_resilience [--dim 4] [--steps 8] [--seed 3]
#include <iostream>

#include "graph/algorithms.hpp"
#include "metrics/metrics.hpp"
#include "nue/nue_routing.hpp"
#include "routing/torus_qos.hpp"
#include "routing/validate.hpp"
#include "topology/faults.hpp"
#include "topology/torus.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace nue;
  Flags flags(argc, argv);
  const auto dim =
      static_cast<std::uint32_t>(flags.get_int("dim", 4, "torus dimension"));
  const auto steps = static_cast<std::uint32_t>(
      flags.get_int("steps", 8, "failure-injection rounds (2 links each)"));
  const auto seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 3, "fault seed"));
  if (!flags.finish()) return 1;

  TorusSpec spec{{dim, dim, dim}, 2, 1};
  Network net = make_torus(spec);
  Rng rng(seed);

  Table table({"dead links", "torus-2qos", "nue(2 VLs)", "nue max path"});
  std::size_t dead_links = 0;  // achieved, not requested (injection can
                               // fall short on heavily degraded fabrics)
  for (std::uint32_t round = 0; round <= steps; ++round) {
    std::string qos_cell = "-";
    try {
      const auto rr = route_torus_qos(net, spec, net.terminals());
      const auto rep = validate_routing(net, rr);
      qos_cell = rep.ok() ? "ok" : ("INVALID: " + rep.detail);
    } catch (const RoutingFailure& e) {
      qos_cell = "FAILS";
    }

    NueOptions opt;
    opt.num_vls = 2;
    const auto rr = route_nue(net, net.terminals(), opt);
    const auto rep = validate_routing(net, rr);
    const auto lengths = path_length_stats(net, rr);
    table.row() << dead_links << qos_cell
                << (rep.ok() ? "ok" : "INVALID")
                << static_cast<std::uint64_t>(lengths.max);

    if (round < steps) {
      const std::size_t injected = inject_link_failures(net, 2, rng);
      dead_links += injected;
      if (injected < 2) {
        std::cerr << "round " << round << ": only " << injected
                  << "/2 link failures injectable\n";
      }
    }
  }
  table.print();
  std::cout << "\nNue remains applicable on every degraded fabric; the\n"
               "topology-aware engine gives up once a ring loses both\n"
               "directions (cf. Fig. 1 and Section 5.3).\n";
  return 0;
}
