// Virtual-lane budget planning (the QoS use case from the paper's
// conclusion): InfiniBand offers at most 8 data VLs, and every VL spent on
// deadlock freedom is a VL unavailable for quality-of-service classes.
// This example sweeps the DL-freedom budget k = 1..8 on an irregular
// fabric and reports, per budget, which routings are applicable and what
// path balance Nue achieves — so an operator can pick, e.g., 2 VLs for
// routing + 4 QoS levels.
//
//   ./examples/vc_budget_planning [--switches 40] [--links 120] [--seed 7]
#include <iostream>

#include "metrics/metrics.hpp"
#include "nue/nue_routing.hpp"
#include "routing/dfsssp.hpp"
#include "routing/lash.hpp"
#include "routing/validate.hpp"
#include "topology/misc_topologies.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace nue;
  Flags flags(argc, argv);
  RandomSpec spec;
  spec.switches = static_cast<std::uint32_t>(
      flags.get_int("switches", 40, "number of switches"));
  spec.links = static_cast<std::uint32_t>(
      flags.get_int("links", 3 * spec.switches, "switch-to-switch links"));
  spec.terminals_per_switch = 4;
  const auto seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 7, "topology seed"));
  if (!flags.finish()) return 1;

  Rng rng(seed);
  Network net = make_random(spec, rng);
  const auto dests = net.terminals();

  // How many VLs would the layered baselines need on this fabric?
  DfssspStats dstats;
  route_dfsssp(net, dests, {.max_vls = 64, .allow_exceed = true}, &dstats);
  LashStats lstats;
  route_lash(net, dests, {.max_vls = 64, .allow_exceed = true}, &lstats);
  std::cout << "fabric: " << net.num_alive_switches() << " switches / "
            << net.num_alive_terminals() << " terminals\n"
            << "DFSSSP needs " << dstats.vls_needed
            << " VLs, LASH needs " << lstats.vls_needed
            << " VLs for deadlock freedom\n\n";

  Table table({"DL-freedom VLs", "QoS levels left", "dfsssp", "lash",
               "nue", "nue gamma_max", "nue fallbacks"});
  for (std::uint32_t k = 1; k <= 8; ++k) {
    NueOptions opt;
    opt.num_vls = k;
    NueStats nstats;
    const auto rr = route_nue(net, dests, opt, &nstats);
    const auto rep = validate_routing(net, rr);
    const auto gamma =
        summarize_forwarding_index(net, edge_forwarding_index(net, rr));
    table.row() << k << (8 - k)
                << (dstats.vls_needed <= k ? "ok" : "-")
                << (lstats.vls_needed <= k ? "ok" : "-")
                << (rep.ok() ? "ok" : "INVALID") << gamma.max
                << static_cast<std::uint64_t>(nstats.fallbacks);
  }
  table.print();
  std::cout << "\nNue is applicable at every budget (column 'nue'), so the\n"
               "operator can trade VLs between deadlock freedom and QoS\n"
               "freely; DFSSSP/LASH only fit once the budget reaches their\n"
               "demand.\n";
  return 0;
}
