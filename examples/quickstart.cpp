// Quickstart: build a network, route it with Nue under a virtual-lane
// budget, validate deadlock-freedom, inspect the tables, and push traffic
// through the flit-level simulator.
//
//   ./examples/quickstart [--vls 2] [--switches 16] [--links 32]
#include <iostream>

#include "graph/algorithms.hpp"
#include "metrics/metrics.hpp"
#include "nue/nue_routing.hpp"
#include "routing/validate.hpp"
#include "sim/flit_sim.hpp"
#include "topology/misc_topologies.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace nue;
  Flags flags(argc, argv);
  const auto vls = static_cast<std::uint32_t>(
      flags.get_int("vls", 2, "virtual lanes available for deadlock freedom"));
  RandomSpec spec;
  spec.switches = static_cast<std::uint32_t>(
      flags.get_int("switches", 16, "number of switches"));
  spec.links = static_cast<std::uint32_t>(
      flags.get_int("links", 2 * spec.switches, "switch-to-switch links"));
  spec.terminals_per_switch = 2;
  const auto seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 1, "topology seed"));
  if (!flags.finish()) return 1;

  // 1. Build an irregular fabric (an arbitrary multigraph works).
  Rng rng(seed);
  Network net = make_random(spec, rng);
  std::cout << "network: " << net.num_alive_switches() << " switches, "
            << net.num_alive_terminals() << " terminals, "
            << net.num_alive_channels() / 2 << " duplex links\n";

  // 2. Route all terminals with Nue under the VL budget. Nue never fails,
  //    for any budget >= 1 — that is the paper's headline property.
  NueOptions opt;
  opt.num_vls = vls;
  NueStats stats;
  const RoutingResult routing = route_nue(net, net.terminals(), opt, &stats);
  std::cout << "nue: routed " << routing.destinations().size()
            << " destinations over " << vls << " virtual lane(s), "
            << stats.fallbacks << " escape-path fallbacks\n";

  // 3. Verify the three validity properties + deadlock freedom (Thm. 1).
  const ValidationReport report = validate_routing(net, routing);
  std::cout << "validation: connected=" << report.connected
            << " cycle_free=" << report.cycle_free
            << " deadlock_free=" << report.deadlock_free << "\n";
  if (!report.ok()) {
    std::cerr << "validation failed: " << report.detail << "\n";
    return 1;
  }

  // 4. Inspect routing quality.
  const auto gamma =
      summarize_forwarding_index(net, edge_forwarding_index(net, routing));
  const auto lengths = path_length_stats(net, routing);
  Table table({"metric", "value"});
  table.row() << "avg path length" << lengths.avg;
  table.row() << "avg shortest possible" << lengths.avg_shortest;
  table.row() << "max path length" << static_cast<std::uint64_t>(lengths.max);
  table.row() << "edge forwarding index avg" << gamma.avg;
  table.row() << "edge forwarding index max" << gamma.max;
  table.print();

  // 5. Drive an all-to-all exchange through the flit simulator.
  SimConfig cfg;
  const auto messages = alltoall_shift_messages(net, /*message_bytes=*/2048);
  const SimResult sim = simulate(net, routing, messages, cfg);
  std::cout << "simulation: " << sim.delivered_packets << " packets in "
            << sim.cycles << " cycles, normalized throughput "
            << sim.normalized_throughput
            << (sim.deadlocked ? "  [DEADLOCK]" : "") << "\n";
  return sim.completed ? 0 : 1;
}
