// Fail-in-place operations example: run a fabric through months of
// simulated attrition (random link failures), rerouting incrementally
// after every event like an online subnet manager would, and compare the
// cost against full recomputation.
//
//   ./examples/fail_in_place [--rounds 6] [--seed 5]
#include <iostream>

#include "nue/nue_routing.hpp"
#include "routing/validate.hpp"
#include "topology/faults.hpp"
#include "topology/misc_topologies.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace nue;
  Flags flags(argc, argv);
  const auto rounds = static_cast<std::uint32_t>(
      flags.get_int("rounds", 6, "failure events to survive"));
  const auto seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 5, "fault seed"));
  if (!flags.finish()) return 1;

  Rng topo_rng(2020);
  RandomSpec spec{60, 180, 6};
  Network net = make_random(spec, topo_rng);
  NueOptions opt;
  opt.num_vls = 4;

  Timer t;
  auto routing = route_nue(net, net.terminals(), opt);
  std::cout << "initial full routing: " << t.seconds() << "s for "
            << routing.destinations().size() << " destinations\n\n";

  Table table({"event", "dead links", "kept", "rerouted", "demoted",
               "incremental [s]", "full [s]", "deadlock-free"});
  Rng rng(seed);
  std::size_t dead = 0;
  for (std::uint32_t round = 1; round <= rounds; ++round) {
    dead += inject_link_failures(net, 1, rng);
    Timer inc;
    RerouteStats rs;
    routing = reroute_nue(net, routing, opt, &rs);
    const double inc_time = inc.seconds();
    Timer full;
    const auto reference = route_nue(net, net.terminals(), opt);
    const double full_time = full.seconds();
    const auto rep = validate_routing(net, routing);
    table.row() << round << dead << rs.dests_kept << rs.dests_rerouted
                << rs.dests_demoted << inc_time << full_time
                << (rep.deadlock_free ? "yes" : "NO");
    if (!rep.ok()) {
      std::cerr << "validation failed: " << rep.detail << "\n";
      return 1;
    }
  }
  table.print();
  std::cout << "\nIncremental rerouting touches only the columns whose "
               "paths crossed a failed\nlink; Theorem 1 holds for the "
               "merged tables after every event.\n";
  return 0;
}
