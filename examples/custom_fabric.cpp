// Operating on a hand-written fabric: read a fabric description (stdin or
// --file), route it with Nue, and emit the artifacts an operator would
// archive — the serialized tables, the GraphViz CDG, and the compiled
// InfiniBand-style LFT footprint.
//
//   ./examples/custom_fabric < my_fabric.txt
//   ./examples/custom_fabric --file my_fabric.txt --vls 2
//
// Fabric format (see src/topology/fabric_io.hpp):
//   switch s0
//   terminal t0
//   link t0 s0
//   link s0 s1 2     # 2 parallel links
#include <unistd.h>

#include <fstream>
#include <iostream>
#include <sstream>

#include "nue/nue_routing.hpp"
#include "routing/dump.hpp"
#include "routing/ib_tables.hpp"
#include "routing/validate.hpp"
#include "topology/fabric_io.hpp"
#include "util/flags.hpp"

namespace {

constexpr const char* kDemoFabric = R"(# demo: two rings bridged by one link
switch a0
switch a1
switch a2
switch b0
switch b1
switch b2
link a0 a1
link a1 a2
link a2 a0
link b0 b1
link b1 b2
link b2 b0
link a0 b0
terminal ta0
terminal ta1
terminal ta2
terminal tb0
terminal tb1
terminal tb2
link ta0 a0
link ta1 a1
link ta2 a2
link tb0 b0
link tb1 b1
link tb2 b2
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace nue;
  Flags flags(argc, argv);
  const std::string file =
      flags.get_string("file", "", "fabric file (default: stdin, or a "
                                   "built-in demo when stdin is a TTY)");
  const auto vls = static_cast<std::uint32_t>(
      flags.get_int("vls", 1, "virtual lanes for deadlock freedom"));
  if (!flags.finish()) return 1;

  Network net;
  if (!file.empty()) {
    net = load_fabric_file(file);
  } else if (!isatty(0)) {
    net = read_fabric(std::cin);
  }
  if (net.num_alive_nodes() == 0) {
    std::istringstream demo(kDemoFabric);
    net = read_fabric(demo);
    std::cout << "(no fabric provided: using the built-in demo fabric)\n";
  }
  std::cout << "fabric: " << net.num_alive_switches() << " switches, "
            << net.num_alive_terminals() << " terminals\n";

  NueOptions opt;
  opt.num_vls = vls;
  NueStats stats;
  const auto rr = route_nue(net, net.terminals(), opt, &stats);
  const auto rep = validate_routing(net, rr);
  std::cout << "nue(k=" << vls << "): deadlock_free=" << rep.deadlock_free
            << " avg_path=" << rep.avg_path_length
            << " fallbacks=" << stats.fallbacks << "\n";
  if (!rep.ok()) {
    std::cerr << "validation failed: " << rep.detail << "\n";
    return 1;
  }

  std::ofstream tables("custom_fabric.routing");
  write_routing(tables, net, rr);
  std::ofstream dot("custom_fabric.cdg.dot");
  write_cdg_dot(dot, net, rr);
  const auto ib = compile_ib_tables(net, rr);
  NUE_CHECK(verify_compiled(net, rr, ib));
  std::cout << "wrote custom_fabric.routing and custom_fabric.cdg.dot; "
            << "compiled " << ib.total_lft_entries()
            << " LFT entries (cross-checked)\n"
            << "render the CDG with: dot -Tsvg custom_fabric.cdg.dot\n";
  return 0;
}
