// Network-on-chip scenario from the paper's conclusion: a 2D mesh of tiles
// whose routers have NO virtual channels (k = 1) and a few manufacturing
// faults. Nue is, per the paper, the first topology-agnostic routing that
// handles this case; we route the faulty mesh, prove deadlock freedom, and
// stream uniform-random tile-to-tile traffic through the simulator.
//
//   ./examples/noc_mesh [--width 6] [--height 6] [--faults 3] [--seed 11]
#include <iostream>

#include "graph/algorithms.hpp"
#include "nue/nue_routing.hpp"
#include "routing/validate.hpp"
#include "sim/flit_sim.hpp"
#include "topology/faults.hpp"
#include "topology/torus.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace nue;
  Flags flags(argc, argv);
  const auto width =
      static_cast<std::uint32_t>(flags.get_int("width", 6, "mesh width"));
  const auto height =
      static_cast<std::uint32_t>(flags.get_int("height", 6, "mesh height"));
  const auto faults = static_cast<std::size_t>(
      flags.get_int("faults", 3, "faulty inter-tile links"));
  const auto seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 11, "seed"));
  if (!flags.finish()) return 1;

  // A mesh is a torus without wrap links: build it directly. One terminal
  // per switch models the tile's local core port.
  Network net;
  for (std::uint32_t i = 0; i < width * height; ++i) net.add_switch();
  auto at = [&](std::uint32_t x, std::uint32_t y) { return y * width + x; };
  for (std::uint32_t y = 0; y < height; ++y) {
    for (std::uint32_t x = 0; x < width; ++x) {
      if (x + 1 < width) net.add_link(at(x, y), at(x + 1, y));
      if (y + 1 < height) net.add_link(at(x, y), at(x, y + 1));
    }
  }
  for (std::uint32_t i = 0; i < width * height; ++i) {
    const NodeId core = net.add_terminal();
    net.add_link(core, i);
  }
  Rng rng(seed);
  const std::size_t injected = inject_link_failures(net, faults, rng);
  std::cout << width << "x" << height << " mesh, " << injected
            << " faulty links, single-buffer routers (no VCs)\n";

  // Route with ONE virtual lane — the case LASH/DFSSSP cannot even start.
  NueOptions opt;
  opt.num_vls = 1;
  NueStats stats;
  const auto rr = route_nue(net, net.terminals(), opt, &stats);
  const auto rep = validate_routing(net, rr);
  std::cout << "nue(k=1): deadlock_free=" << rep.deadlock_free
            << " max_path=" << rep.max_path_length
            << " escape_fallbacks=" << stats.fallbacks << "\n";
  if (!rep.ok()) {
    std::cerr << "validation failed: " << rep.detail << "\n";
    return 1;
  }

  SimConfig cfg;
  cfg.buffer_flits = 4;  // shallow on-chip buffers
  Rng traffic_rng(seed + 1);
  const auto msgs = uniform_random_messages(
      net, 20 * width * height, /*message_bytes=*/256, traffic_rng);
  const auto sim = simulate(net, rr, msgs, cfg);
  std::cout << "simulated " << sim.delivered_packets << " packets in "
            << sim.cycles << " cycles"
            << (sim.deadlocked ? " [DEADLOCK]" : "") << "\n";
  return sim.completed ? 0 : 1;
}
