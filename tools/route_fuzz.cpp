// Differential routing fuzzer CLI (see docs/FUZZING.md).
//
// Modes:
//   --smoke            fixed-seed corpus over every generator x engine,
//                      plus an oracle self-test (deliberately broken
//                      tables must be caught, minimized, and replayed).
//                      Small and deterministic: the tier-1 CI gate.
//   --count N          random batch of N drawn scenarios (default mode).
//   --reconfig         draw reconfiguration scenarios instead: each drives
//                      a fault/repair trace through the live resilience
//                      manager and checks every epoch and swap (the smoke
//                      corpus always contains a few of these).
//   --nightly          alias for a large random batch (--count 2000).
//   --replay FILE      re-run one reproducer file.
//   --inject-bug M     self-test sweep: apply mutation M (vl-overflow or
//                      drop-entry) to every scenario; any table that
//                      slips through the oracle is reported.
//
// Every failing scenario is printed with its spec label (which alone
// replays it); with --repro-dir the failure is also shrunk by the greedy
// minimizer and written as a replayable .repro file.
//
// Exit code: 0 = no violations, 2 = violations found, 1 = usage error.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "fuzz/fuzz.hpp"
#include "telemetry/cli.hpp"
#include "util/flags.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

using namespace nue;
using namespace nue::fuzz;

struct Totals {
  std::size_t scenarios = 0;
  std::size_t violations = 0;
  std::size_t inapplicable = 0;
  std::size_t sim_checked = 0;
  std::size_t sim_deadlocks = 0;       // observed (expected for minhop)
  std::size_t fault_shortfalls = 0;    // achieved < requested scenarios
  std::size_t reconfig_checked = 0;    // reconfiguration scenarios run
  std::size_t reconfig_transitions = 0;
  std::size_t reconfig_hitless = 0;
  std::size_t reconfig_drained = 0;
  std::size_t reconfig_waved = 0;         // wave chains (drains avoided)
  std::size_t reconfig_wave_commits = 0;  // epochs those chains committed
};

Totals summarize(const std::vector<ScenarioOutcome>& outcomes) {
  Totals t;
  t.scenarios = outcomes.size();
  for (const auto& o : outcomes) {
    if (!o.report.ok()) ++t.violations;
    if (!o.report.applicable) ++t.inapplicable;
    if (o.report.sim_checked) ++t.sim_checked;
    if (o.report.sim_deadlocked) ++t.sim_deadlocks;
    if (o.link_faults < o.spec.fail_links ||
        o.switch_faults < o.spec.fail_switches) {
      ++t.fault_shortfalls;
    }
    if (o.report.reconfig_checked) {
      ++t.reconfig_checked;
      t.reconfig_transitions += o.report.reconfig_transitions;
      t.reconfig_hitless += o.report.reconfig_hitless;
      t.reconfig_drained += o.report.reconfig_drained;
      t.reconfig_waved += o.report.reconfig_waved;
      t.reconfig_wave_commits += o.report.reconfig_wave_commits;
    }
  }
  return t;
}

void print_failures(const std::vector<ScenarioOutcome>& outcomes) {
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const auto& o = outcomes[i];
    if (o.report.ok()) continue;
    std::cout << "FAIL [" << i << "] " << o.spec.label() << "\n";
    for (const auto& v : o.report.violations) {
      std::cout << "    " << v << "\n";
    }
  }
}

void write_json(const std::string& path,
                const std::vector<ScenarioOutcome>& outcomes,
                const Totals& t) {
  std::ofstream os(path);
  os << "{\n  \"scenarios\": " << t.scenarios
     << ",\n  \"violations\": " << t.violations
     << ",\n  \"inapplicable\": " << t.inapplicable
     << ",\n  \"sim_checked\": " << t.sim_checked
     << ",\n  \"sim_deadlocks\": " << t.sim_deadlocks
     << ",\n  \"fault_shortfalls\": " << t.fault_shortfalls
     << ",\n  \"reconfig_checked\": " << t.reconfig_checked
     << ",\n  \"reconfig_transitions\": " << t.reconfig_transitions
     << ",\n  \"reconfig_hitless\": " << t.reconfig_hitless
     << ",\n  \"reconfig_drained\": " << t.reconfig_drained
     << ",\n  \"reconfig_waved\": " << t.reconfig_waved
     << ",\n  \"reconfig_wave_commits\": " << t.reconfig_wave_commits
     << ",\n  \"failures\": [\n";
  bool first = true;
  for (const auto& o : outcomes) {
    if (o.report.ok()) continue;
    if (!first) os << ",\n";
    first = false;
    os << "    {\"label\": \"" << o.spec.label() << "\", \"kind\": \""
       << violation_kind(o.report) << "\"}";
  }
  os << "\n  ]\n}\n";
}

/// Re-run a minimized reproducer with telemetry on and write the span
/// trace + metrics snapshot next to it, so a failure ships with its own
/// diagnosis bundle (see docs/OBSERVABILITY.md). Resets the telemetry
/// sinks around the re-run; callers must export any batch-level trace
/// before dumping reproducers.
void dump_diagnosis(const Reproducer& r, const std::string& stem,
                    const OracleConfig& ocfg) {
  telemetry::reset_all();
  ReplayResult res;
  {
    telemetry::EnabledScope scope(true);
    res = replay(r, ocfg);
  }
  {
    std::ofstream os(stem + ".trace.json");
    telemetry::write_chrome_trace(os, "route_fuzz");
  }
  {
    std::ofstream os(stem + ".metrics.json");
    telemetry::write_run_report(
        os, "route_fuzz",
        {{"label", r.spec.label()},
         {"expect", r.expect},
         {"reproduced", res.reproduced ? "true" : "false"}});
  }
  telemetry::reset_all();
}

/// Minimize each failure and write a replayable reproducer next to it,
/// plus the telemetry snapshot of the minimized re-run.
void dump_reproducers(const std::vector<ScenarioOutcome>& outcomes,
                      const std::string& dir, const MinimizeConfig& mcfg) {
  std::filesystem::create_directories(dir);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const auto& o = outcomes[i];
    if (o.report.ok()) continue;
    const Reproducer r = minimize_scenario(o.spec, mcfg);
    std::stringstream name;
    name << dir << "/repro-" << i << "-" << r.expect;
    save_reproducer_file(name.str() + ".repro", r);
    dump_diagnosis(r, name.str(), mcfg.oracle);
    std::cout << "    wrote " << name.str() << ".repro (" << r.removals.size()
              << " shrink removals) + .trace.json/.metrics.json\n";
  }
}

/// Smoke-mode oracle self-test: deliberately broken tables across all
/// three VL modes must be caught; one of them must survive the full
/// minimize -> serialize -> parse -> replay loop.
bool oracle_self_test(std::uint64_t base_seed, const OracleConfig& ocfg) {
  bool ok = true;
  std::vector<ScenarioSpec> mutated;
  for (Engine e : {Engine::kNue, Engine::kDfsssp, Engine::kTorusQos}) {
    for (Mutation m : {Mutation::kVlOverflow, Mutation::kDropEntry}) {
      for (const auto& s : smoke_corpus(base_seed)) {
        if (s.engine == e && s.fail_links == 0 && s.vls >= 2) {
          ScenarioSpec broken = s;
          broken.mutation = m;
          mutated.push_back(broken);
          break;
        }
      }
    }
  }
  for (const auto& spec : mutated) {
    const OracleReport rep = run_scenario(spec, {}, ocfg);
    const std::string kind = violation_kind(rep);
    if (rep.ok() || kind == "mutation-not-caught") {
      std::cout << "SELF-TEST FAIL: " << spec.label()
                << " slipped through the oracle\n";
      ok = false;
    }
  }
  if (!mutated.empty()) {
    MinimizeConfig mcfg;
    mcfg.oracle = ocfg;
    const Reproducer r = minimize_scenario(mutated.front(), mcfg);
    std::stringstream buf;
    write_reproducer(buf, r);
    const ReplayResult res = replay(read_reproducer(buf), ocfg);
    if (!res.reproduced || !res.fabric_matches) {
      std::cout << "SELF-TEST FAIL: minimized reproducer for "
                << mutated.front().label() << " did not replay (reproduced="
                << res.reproduced << " fabric=" << res.fabric_matches
                << ")\n";
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool smoke =
      flags.get_bool("smoke", false, "fixed-seed CI corpus + oracle self-test");
  const bool nightly =
      flags.get_bool("nightly", false, "large random batch (--count 2000)");
  const bool reconfig = flags.get_bool(
      "reconfig", false,
      "draw reconfiguration scenarios (live-manager fault/repair traces)");
  const auto count = static_cast<std::size_t>(flags.get_int(
      "count", nightly ? 2000 : 200, "random scenarios to draw"));
  const auto seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 1, "base seed"));
  const auto threads = flags.get_threads();
  const auto max_sim_nodes = static_cast<std::size_t>(flags.get_int(
      "max-sim-nodes", 72, "differential-sim fabric size bound (0 = off)"));
  const std::string inject =
      flags.get_string("inject-bug", "", "mutate every scenario (self-test)");
  const std::string repro_dir = flags.get_string(
      "repro-dir", "", "minimize failures and write .repro files here");
  const std::string replay_path =
      flags.get_string("replay", "", "replay one reproducer file");
  const std::string json_path =
      flags.get_string("json", "", "summary JSON output path");
  const auto minimize_trials = static_cast<std::size_t>(flags.get_int(
      "minimize-trials", 400, "scenario re-runs the minimizer may spend"));
  telemetry::Cli telem;
  telem.register_flags(flags);
  if (!flags.finish()) return 1;
  set_default_threads(threads);

  OracleConfig ocfg;
  ocfg.max_sim_nodes = max_sim_nodes;

  if (!replay_path.empty()) {
    const Reproducer r = load_reproducer_file(replay_path);
    const ReplayResult res = replay(r, ocfg);
    std::cout << "replay " << replay_path << ": " << r.spec.label() << "\n";
    std::cout << "  expect " << r.expect << ", got '"
              << violation_kind(res.report) << "', fabric "
              << (res.fabric_matches ? "matches" : "MISMATCH") << "\n";
    for (const auto& v : res.report.violations) std::cout << "  " << v << "\n";
    const bool ok = res.reproduced && res.fabric_matches;
    std::cout << (ok ? "reproduced\n" : "NOT reproduced\n");
    if (telem.wanted()) {
      telem.finish("route_fuzz",
                   {{"mode", "replay"},
                    {"replay", replay_path},
                    {"label", r.spec.label()},
                    {"expect", r.expect},
                    {"reproduced", res.reproduced ? "true" : "false"}});
    }
    return ok ? 0 : 2;
  }

  Mutation mutation = Mutation::kNone;
  if (!inject.empty()) {
    const auto m = mutation_from_name(inject);
    if (!m.has_value() || *m == Mutation::kNone) {
      std::cerr << "unknown --inject-bug '" << inject
                << "' (use vl-overflow or drop-entry)\n";
      return 1;
    }
    mutation = *m;
  }

  std::vector<ScenarioSpec> specs;
  if (smoke) {
    specs = smoke_corpus(seed);
  } else {
    specs.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      specs.push_back(reconfig ? draw_reconfig_scenario(seed, i)
                               : draw_scenario(seed, i));
    }
  }
  for (auto& s : specs) {
    if (mutation != Mutation::kNone) s.mutation = mutation;
  }

  FuzzConfig cfg;
  cfg.threads = threads;
  cfg.oracle = ocfg;
  Timer timer;
  const auto outcomes = run_batch(specs, cfg);
  const double seconds = timer.seconds();

  const Totals t = summarize(outcomes);
  print_failures(outcomes);
  // Export the batch-level trace before any reproducer dumps: diagnosis
  // re-runs reset the telemetry sinks per failure.
  if (telem.wanted()) {
    telem.finish("route_fuzz",
                 {{"mode", smoke ? "smoke" : reconfig ? "reconfig" : "random"},
                  {"count", std::to_string(specs.size())},
                  {"seed", std::to_string(seed)},
                  {"threads", std::to_string(threads)}});
  }
  if (!repro_dir.empty() && t.violations > 0) {
    MinimizeConfig mcfg;
    mcfg.max_trials = minimize_trials;
    mcfg.oracle = ocfg;
    dump_reproducers(outcomes, repro_dir, mcfg);
  }
  if (!json_path.empty()) write_json(json_path, outcomes, t);

  bool self_test_ok = true;
  if (smoke && mutation == Mutation::kNone) {
    self_test_ok = oracle_self_test(seed, ocfg);
  }

  std::cout << t.scenarios << " scenarios in " << seconds << " s: "
            << t.violations << " violations, " << t.inapplicable
            << " inapplicable, " << t.sim_checked << " sim-checked ("
            << t.sim_deadlocks << " deadlocked), " << t.fault_shortfalls
            << " with fault shortfall\n";
  if (t.reconfig_checked > 0) {
    std::cout << "reconfig: " << t.reconfig_checked << " scenarios, "
              << t.reconfig_transitions << " transitions ("
              << t.reconfig_hitless << " hitless, " << t.reconfig_drained
              << " drained, " << t.reconfig_waved << " waved across "
              << t.reconfig_wave_commits << " wave epochs)\n";
  }
  if (mutation != Mutation::kNone) {
    // Self-test sweep: violations are the expected outcome; the failure
    // mode is a mutated-but-applicable scenario the oracle missed.
    std::size_t missed = 0;
    for (const auto& o : outcomes) {
      if (o.report.applicable &&
          violation_kind(o.report) == "mutation-not-caught") {
        ++missed;
      }
    }
    std::cout << "inject-bug sweep: " << missed
              << " mutated tables slipped through\n";
    return missed == 0 ? 0 : 2;
  }
  if (!self_test_ok) return 2;
  return t.violations == 0 ? 0 : 2;
}
