// nue_route — command-line routing tool (the repo's "OpenSM stand-in"):
// load or generate a fabric, optionally degrade it, run a routing engine,
// validate deadlock-freedom, dump tables/CDG/fabric, and optionally push
// an all-to-all exchange through the flit simulator.
//
// Examples:
//   nue_route --generate torus:4x4x3:4 --fail-switches 1 --routing nue --vls 4
//   nue_route --topology fabric.txt --routing dfsssp --dump-tables tables.txt
//   nue_route --generate random:125:1000:8 --routing nue --vls 2 --simulate
//
// Live reconfiguration (src/resilience, docs/RESILIENCE.md):
//   nue_route --fault-trace run.trace --routing nue --vls 2
//       replay a recorded fault/repair trace through the resilience
//       manager (the fabric regenerates from the trace's own generator
//       spec unless --generate/--topology overrides it)
//   nue_route --generate torus:4x4:2 --fault-events 12 \
//             --fault-trace-out run.trace --reconfig-json out.json
//       draw a random event stream, replay it live, save the trace
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>

#include "graph/algorithms.hpp"
#include "metrics/metrics.hpp"
#include "nue/nue_routing.hpp"
#include "routing/dfsssp.hpp"
#include "routing/dump.hpp"
#include "routing/ib_tables.hpp"
#include "routing/fattree_routing.hpp"
#include "routing/lash.hpp"
#include "routing/torus_qos.hpp"
#include "routing/updown.hpp"
#include "routing/validate.hpp"
#include "resilience/resilience.hpp"
#include "sim/flit_sim.hpp"
#include "telemetry/cli.hpp"
#include "topology/fabric_io.hpp"
#include "topology/faults.hpp"
#include "topology/generate.hpp"
#include "topology/torus.hpp"
#include "topology/trees.hpp"
#include "util/flags.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace nue;
  Flags flags(argc, argv);
  const std::string topo_file =
      flags.get_string("topology", "", "fabric file to load");
  const std::string gen =
      flags.get_string("generate", "", "generator spec, e.g. torus:4x4x3:4");
  const auto fail_links = static_cast<std::size_t>(
      flags.get_int("fail-links", 0, "random link failures to inject"));
  const auto fail_switches = static_cast<std::size_t>(
      flags.get_int("fail-switches", 0, "random switch failures to inject"));
  const auto fault_seed = static_cast<std::uint64_t>(
      flags.get_int("fault-seed", 1, "failure-injection seed"));
  const std::string fault_trace_file = flags.get_string(
      "fault-trace", "",
      "replay a fault/repair trace through the live resilience manager");
  const auto fault_events = static_cast<std::size_t>(flags.get_int(
      "fault-events", 0,
      "draw this many random fault/repair events and replay them live"));
  const std::string fault_trace_out = flags.get_string(
      "fault-trace-out", "", "save the drawn event trace to this file");
  const auto max_vls_flag = static_cast<std::uint32_t>(flags.get_int(
      "max-vls", 0, "repair ladder VL escalation cap (0 = max(--vls, 8))"));
  const std::string reconfig_json = flags.get_string(
      "reconfig-json", "", "write the reconfiguration verdict log as JSON");
  const std::string engine = flags.get_string(
      "routing", "nue", "nue|dfsssp|lash|updown|minhop|torus-qos|fattree");
  const auto vls = static_cast<std::uint32_t>(
      flags.get_int("vls", 1, "virtual lanes for deadlock freedom"));
  const std::string betweenness = flags.get_string(
      "betweenness", "exact",
      "Nue escape-root Brandes: exact | sampled:<pivots> (docs/SCALING.md)");
  const std::string dump_tables =
      flags.get_string("dump-tables", "", "write forwarding tables ('-' = stdout)");
  const std::string dump_cdg =
      flags.get_string("dump-cdg", "", "write induced CDG as GraphViz dot");
  const std::string dump_fabric =
      flags.get_string("dump-fabric", "", "write the (degraded) fabric");
  const std::string save_routing =
      flags.get_string("save-routing", "", "serialize the routing tables");
  const bool compile_ib = flags.get_bool(
      "compile-ib", false,
      "compile LFT/SL/SL2VL state and cross-check it against the routing");
  const bool do_sim =
      flags.get_bool("simulate", false, "run an all-to-all flit simulation");
  const auto msg_bytes = static_cast<std::uint32_t>(
      flags.get_int("message-bytes", 2048, "simulated message size"));
  const auto shifts = static_cast<std::uint32_t>(flags.get_int(
      "shift-samples", 8, "all-to-all shift phases to simulate (0 = all)"));
  telemetry::Cli telem;
  telem.register_flags(flags);
  const std::uint32_t threads = flags.get_threads();
  if (!flags.finish()) return 1;
  std::size_t betweenness_pivots = 0;
  if (betweenness != "exact") {
    if (betweenness.rfind("sampled:", 0) == 0) {
      try {
        betweenness_pivots = std::stoul(betweenness.substr(8));
      } catch (const std::exception&) {
        betweenness_pivots = 0;
      }
    }
    if (betweenness_pivots == 0) {
      std::cerr << "--betweenness must be 'exact' or 'sampled:<pivots>' "
                   "with pivots >= 1, got '" << betweenness << "'\n";
      return 1;
    }
  }
  set_default_threads(threads);
  const std::vector<std::pair<std::string, std::string>> telem_config = {
      {"topology", topo_file.empty() ? gen : topo_file},
      {"routing", engine},
      {"vls", std::to_string(vls)},
      {"fail_links", std::to_string(fail_links)},
      {"fail_switches", std::to_string(fail_switches)},
      {"fault_seed", std::to_string(fault_seed)},
      {"threads", std::to_string(threads)},
      {"betweenness", betweenness},
  };

  try {
    // --- fabric -------------------------------------------------------------
    std::optional<FaultTrace> trace;
    if (!fault_trace_file.empty()) {
      trace = load_fault_trace_file(fault_trace_file);
    }
    GeneratedTopology topo;
    if (!topo_file.empty()) {
      topo.net = load_fabric_file(topo_file);
    } else if (!gen.empty()) {
      topo = generate_topology(gen);
    } else if (trace.has_value() && !trace->generate.empty()) {
      topo = generate_topology(trace->generate);
    } else {
      std::cerr << "need --topology FILE or --generate SPEC (see --help)\n";
      return 1;
    }
    Network& net = topo.net;
    Rng fault_rng(fault_seed);
    std::size_t dead_switches = 0, dead_links = 0;
    if (fail_switches > 0) {
      dead_switches = inject_switch_failures(net, fail_switches, fault_rng);
    }
    if (fail_links > 0) {
      dead_links = inject_link_failures(net, fail_links, fault_rng);
    }
    if (dead_switches < fail_switches || dead_links < fail_links) {
      std::cerr << "warning: injected " << dead_switches << "/"
                << fail_switches << " switch and " << dead_links << "/"
                << fail_links
                << " link failures (injection keeps the fabric connected "
                   "and gives up after a bounded number of redraws)\n";
    }
    std::cout << "fabric: " << net.num_alive_switches() << " switches, "
              << net.num_alive_terminals() << " terminals, "
              << net.num_alive_channels() / 2 << " duplex links";
    if (dead_switches + dead_links > 0) {
      std::cout << " (" << dead_switches << " failed switches, " << dead_links
                << " failed links)";
    }
    std::cout << "\n";
    NUE_CHECK_MSG(is_connected(net), "fabric is disconnected");
    if (!dump_fabric.empty()) save_fabric_file(dump_fabric, net);

    // --- live reconfiguration ------------------------------------------------
    if (trace.has_value() || fault_events > 0) {
      if (!trace.has_value()) {
        trace = draw_fault_trace(net, gen, fault_seed, fault_events);
        std::cout << "drew " << trace->events.size()
                  << " fault/repair events (seed " << fault_seed << ")\n";
      }
      if (!fault_trace_out.empty()) {
        save_fault_trace_file(fault_trace_out, *trace);
      }
      const auto repair_engine = resilience::engine_from_name(engine);
      NUE_CHECK_MSG(repair_engine.has_value(),
                    "live repair needs --routing nue|dfsssp|lash|updown, got '"
                        << engine << "'");
      resilience::RepairPolicy policy;
      policy.engine = *repair_engine;
      policy.vls = std::max(vls, 1u);
      policy.max_vls = max_vls_flag > 0 ? std::max(max_vls_flag, policy.vls)
                                        : std::max(policy.vls, 8u);
      policy.seed = fault_seed;
      policy.num_threads = threads;
      Timer replay_timer;
      resilience::ResilienceManager mgr(net, policy);
      const auto records = mgr.replay(*trace);
      for (const auto& r : records) {
        std::cout << "  epoch " << r.epoch << " " << r.event << ": "
                  << r.committed_step << " (" << r.affected_dests << "/"
                  << r.total_dests << " dests, " << r.repair_ms << "ms"
                  << (r.drained ? ", drained" : r.hitless ? ", hitless" : "")
                  << ")\n";
      }
      const auto sum = mgr.log().summarize();
      std::cout << "reconfig: " << trace->events.size() << " events -> "
                << sum.transitions << " transitions (" << sum.hitless
                << " hitless, " << sum.drained << " drained, " << sum.noops
                << " noops) in " << replay_timer.seconds() << "s\n";
      std::cout << "repair latency: median " << sum.median_repair_ms
                << "ms, p99 " << sum.p99_repair_ms << "ms, max "
                << sum.max_repair_ms << "ms\n";
      if (!reconfig_json.empty()) {
        std::ofstream f(reconfig_json);
        mgr.log().write_json(f);
      }
      const auto final_rep = validate_routing(mgr.net(), *mgr.table());
      std::cout << "final table: connected=" << final_rep.connected
                << " cycle_free=" << final_rep.cycle_free
                << " deadlock_free=" << final_rep.deadlock_free
                << " live_elements=" << final_rep.live_elements << "\n";
      if (telem.wanted()) {
        // The run report embeds the structured reconfiguration log next to
        // the folded resilience.* counters (same JSON as --reconfig-json).
        std::ostringstream reconfig;
        mgr.log().write_json(reconfig);
        telem.finish("nue_route", telem_config, {{"reconfig", reconfig.str()}});
      }
      return final_rep.ok() ? 0 : 2;
    }

    // --- routing ------------------------------------------------------------
    const auto dests = net.terminals();
    Timer timer;
    std::optional<RoutingResult> rr;
    std::string vl_note = "";
    if (engine == "nue") {
      NueOptions opt;
      opt.num_vls = vls;
      opt.betweenness_pivots = betweenness_pivots;
      NueStats stats;
      rr.emplace(route_nue(net, dests, opt, &stats));
      vl_note = " (fallbacks: " + std::to_string(stats.fallbacks) + ")";
    } else if (engine == "dfsssp") {
      DfssspStats stats;
      rr.emplace(route_dfsssp(net, dests, {.max_vls = std::max(vls, 1u)},
                              &stats));
      vl_note = " (VLs needed: " + std::to_string(stats.vls_needed) + ")";
    } else if (engine == "lash") {
      LashStats stats;
      rr.emplace(
          route_lash(net, dests, {.max_vls = std::max(vls, 1u)}, &stats));
      vl_note = " (VLs needed: " + std::to_string(stats.vls_needed) + ")";
    } else if (engine == "updown") {
      rr.emplace(route_updown(net, dests));
    } else if (engine == "minhop") {
      rr.emplace(route_minhop(net, dests));
    } else if (engine == "torus-qos") {
      NUE_CHECK_MSG(topo.torus.has_value(),
                    "torus-qos needs --generate torus:...");
      rr.emplace(route_torus_qos(net, *topo.torus, dests));
    } else if (engine == "fattree") {
      NUE_CHECK_MSG(topo.fattree.has_value(),
                    "fattree routing needs --generate fattree:...");
      rr.emplace(route_fattree(net, *topo.fattree, dests));
    } else {
      std::cerr << "unknown routing engine '" << engine << "'\n";
      return 1;
    }
    std::cout << "routing: " << engine << " in " << timer.seconds() << "s"
              << vl_note << "\n";

    // --- validation + metrics ------------------------------------------------
    const auto write_telem = [&] {
      if (telem.wanted()) telem.finish("nue_route", telem_config);
    };
    const auto rep = validate_routing(net, *rr);
    std::cout << "validation: connected=" << rep.connected
              << " cycle_free=" << rep.cycle_free
              << " deadlock_free=" << rep.deadlock_free
              << " (avg path " << rep.avg_path_length << ", max "
              << rep.max_path_length << ")\n";
    const auto gamma =
        summarize_forwarding_index(net, edge_forwarding_index(net, *rr));
    std::cout << "edge forwarding index: min " << gamma.min << " avg "
              << gamma.avg << " max " << gamma.max << "\n";

    // --- dumps ---------------------------------------------------------------
    if (dump_tables == "-") {
      write_forwarding_tables(std::cout, net, *rr);
    } else if (!dump_tables.empty()) {
      std::ofstream f(dump_tables);
      write_forwarding_tables(f, net, *rr);
    }
    if (!dump_cdg.empty()) {
      std::ofstream f(dump_cdg);
      write_cdg_dot(f, net, *rr);
    }
    if (!save_routing.empty()) {
      std::ofstream f(save_routing);
      write_routing(f, net, *rr);
    }
    if (compile_ib) {
      const auto tables = compile_ib_tables(net, *rr);
      const bool ok = verify_compiled(net, *rr, tables);
      std::cout << "ib tables: " << (tables.node_of_lid.size() - 1)
                << " LIDs, " << tables.total_lft_entries()
                << " LFT entries, cross-check "
                << (ok ? "passed" : "FAILED") << "\n";
      if (!ok) {
        write_telem();
        return 2;
      }
    }

    // --- simulation ------------------------------------------------------------
    if (do_sim) {
      SimConfig cfg;
      const auto msgs = alltoall_shift_messages(net, msg_bytes, shifts);
      const auto res = simulate(net, *rr, msgs, cfg);
      std::cout << "simulation: " << res.delivered_packets << " packets, "
                << res.cycles << " cycles, normalized throughput "
                << res.normalized_throughput << ", avg latency "
                << res.avg_packet_latency << " cycles"
                << (res.deadlocked ? "  [DEADLOCK]" : "") << "\n";
      if (!res.completed) {
        write_telem();  // a deadlocked run is when the trace matters most
        return 2;
      }
    }
    write_telem();
    return rep.ok() ? 0 : 2;
  } catch (const RoutingFailure& e) {
    std::cerr << "routing failed: " << e.what() << "\n";
    return 3;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
