// nue_routectl — command-line client for nue_managerd (docs/SERVICE.md).
// Builds one protocol request from flags (or sends --request verbatim),
// prints the daemon's JSON response line to stdout, and exits 0 iff the
// daemon answered {"ok": true}.
//
//   nue_routectl --socket /tmp/nue.sock --op status
//   nue_routectl --socket /tmp/nue.sock --op route --fabric a --src 16 --dst 17
//   nue_routectl --socket /tmp/nue.sock --op event --fabric a \
//       --kind link-down --id 4
//   nue_routectl --socket /tmp/nue.sock --op shutdown
#include <iostream>
#include <string>

#include "service/client.hpp"
#include "service/json.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using nue::service::Client;
  using nue::service::Json;
  nue::Flags flags(argc, argv);
  const std::string socket_path =
      flags.get_string("socket", "", "nue_managerd socket path (required)");
  const std::string raw = flags.get_string(
      "request", "", "send this raw JSON request instead of building one");
  const std::string op = flags.get_string(
      "op", "status",
      "status|load|unload|route|tables|event|storm|reconfig-log|shutdown");
  const std::string fabric =
      flags.get_string("fabric", "", "target fabric name");
  const std::string generate =
      flags.get_string("generate", "", "load: generator spec");
  const std::string engine =
      flags.get_string("engine", "nue", "load: repair engine");
  const int vls = flags.get_int("vls", 2, "load: base VL budget");
  const int src = flags.get_int("src", -1, "route: source node id");
  const int dst = flags.get_int("dst", -1, "route: destination node id");
  const std::string kind = flags.get_string(
      "kind", "", "event: link-down|switch-down|link-restore|switch-restore");
  const int id = flags.get_int("id", -1, "event: channel/node id");
  const int events = flags.get_int("events", 16, "storm: event count");
  const int seed = flags.get_int("seed", 1, "load/storm: seed");
  if (!flags.finish()) return 1;
  if (socket_path.empty()) {
    std::cerr << "nue_routectl: --socket PATH is required\n";
    return 1;
  }

  try {
    Json req;
    if (!raw.empty()) {
      req = Json::parse(raw);
    } else {
      req = Json::object();
      req.set("op", op);
      if (!fabric.empty()) req.set("fabric", fabric);
      if (op == "load") {
        req.set("generate", generate);
        req.set("engine", engine);
        req.set("vls", vls);
        req.set("seed", seed);
      } else if (op == "route") {
        req.set("src", src);
        req.set("dst", dst);
      } else if (op == "event") {
        req.set("kind", kind);
        req.set("id", id);
      } else if (op == "storm") {
        req.set("events", events);
        req.set("seed", seed);
      }
    }
    Client client(socket_path);
    const Json resp = client.request(req);
    std::cout << resp.dump() << "\n";
    return resp.boolean("ok") ? 0 : 2;
  } catch (const std::exception& e) {
    std::cerr << "nue_routectl: " << e.what() << "\n";
    return 1;
  }
}
