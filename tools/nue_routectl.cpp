// nue_routectl — command-line client for nue_managerd (docs/SERVICE.md).
// Builds one protocol request from flags (or sends --request verbatim)
// and renders the response for humans; --json prints the daemon's raw
// JSON response line instead, for scripts. Exit code: 0 on {"ok": true},
// 2 when the daemon answered with an error envelope (the error lands on
// stderr either way), 1 on transport/usage failures.
//
//   nue_routectl --socket /tmp/nue.sock --op status
//   nue_routectl --socket /tmp/nue.sock --op route --fabric a --src 16 --dst 17
//   nue_routectl --socket /tmp/nue.sock --op metrics --json
//   nue_routectl --socket /tmp/nue.sock --op metrics --format prom
//   nue_routectl --socket /tmp/nue.sock --op journal --fabric a --tail 20
//   nue_routectl --socket /tmp/nue.sock --op watch --interval-ms 1000
//   nue_routectl --socket /tmp/nue.sock --op shutdown
//
// `watch` is client-side: it polls `status` + `metrics` every
// --interval-ms and renders a refreshing per-shard live view (epoch and
// its age, drains/waves, p50/p99 repair and request latency) until
// interrupted (or for --iterations ticks).
#include <unistd.h>

#include <chrono>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "service/client.hpp"
#include "service/json.hpp"
#include "telemetry/telemetry.hpp"
#include "util/flags.hpp"

namespace {

using nue::service::Client;
using nue::service::Json;

/// (le, count) pairs of one histogram in a live metrics report, for
/// telemetry::quantile_from_buckets.
std::vector<std::pair<std::uint64_t, std::uint64_t>> histogram_buckets(
    const Json& report, const std::string& name) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  const Json* hists = report.find("histograms");
  const Json* h = hists != nullptr ? hists->find(name) : nullptr;
  const Json* buckets = h != nullptr ? h->find("buckets") : nullptr;
  if (buckets == nullptr) return out;
  for (const Json& b : buckets->items()) {
    out.emplace_back(static_cast<std::uint64_t>(b.num("le")),
                     static_cast<std::uint64_t>(b.num("count")));
  }
  return out;
}

void render_status(std::ostream& os, const Json& resp) {
  const Json* fabrics = resp.find("fabrics");
  if (fabrics == nullptr || fabrics->items().empty()) {
    os << "no fabrics loaded\n";
    return;
  }
  const auto i64 = [](double v) { return static_cast<long long>(v); };
  for (const Json& f : fabrics->items()) {
    os << f.str("fabric") << ": " << f.str("generate") << " @ "
       << f.str("engine") << "  epoch " << i64(f.num("epoch")) << " (age "
       << i64(f.num("epoch_age_ms")) << " ms)\n"
       << "  switches " << i64(f.num("switches")) << "  terminals "
       << i64(f.num("terminals")) << "  queries " << i64(f.num("queries"))
       << "  events " << i64(f.num("events")) << "  route_errors "
       << i64(f.num("route_errors")) << "\n"
       << "  transitions " << i64(f.num("transitions")) << " (hitless "
       << i64(f.num("hitless")) << ", drained " << i64(f.num("drained"))
       << ", waves " << i64(f.num("waves")) << ", saves "
       << i64(f.num("zero_drain_saves")) << ", noops "
       << i64(f.num("noops")) << ")\n"
       << "  repair_ms p50 " << std::fixed << std::setprecision(2)
       << f.num("p50_repair_ms") << "  p99 " << f.num("p99_repair_ms")
       << "  max " << f.num("max_repair_ms") << std::defaultfloat << "\n";
  }
}

void render_route(std::ostream& os, const Json& resp) {
  os << resp.str("fabric") << " epoch " << resp.num("epoch") << ": "
     << resp.num("src") << " -> " << resp.num("dst") << " in "
     << resp.num("hops") << " hops; nodes";
  const Json* nodes = resp.find("nodes");
  if (nodes != nullptr) {
    for (const Json& n : nodes->items()) os << " " << n.as_number();
  }
  os << "; vls";
  const Json* vls = resp.find("vls");
  if (vls != nullptr) {
    for (const Json& v : vls->items()) os << " " << v.as_number();
  }
  os << "\n";
}

void render_event(std::ostream& os, const Json& resp) {
  os << resp.str("fabric") << " epoch " << resp.num("epoch") << ": "
     << resp.str("event") << " -> " << resp.str("step")
     << (resp.boolean("hitless") ? " (hitless" : " (not hitless")
     << (resp.boolean("drained") ? ", drained" : "");
  if (resp.num("waves") > 0) os << ", " << resp.num("waves") << " waves";
  os << ") repair " << std::fixed << std::setprecision(2)
     << resp.num("repair_ms") << " ms\n";
}

void render_storm(std::ostream& os, const Json& resp) {
  os << resp.str("fabric") << ": " << resp.num("events") << " events -> "
     << resp.num("transitions") << " transitions ("
     << resp.num("hitless_swaps") << " hitless, " << resp.num("drains")
     << " drains, " << resp.num("waved") << " waved, " << resp.num("noops")
     << " noops), final epoch " << resp.num("epoch") << "\n";
}

void render_journal(std::ostream& os, const Json& resp) {
  const Json* entries = resp.find("entries");
  if (entries != nullptr) {
    for (const Json& e : entries->items()) {
      os << "[" << std::setw(6) << static_cast<long long>(e.num("seq"))
         << "] " << std::fixed << std::setprecision(1) << std::setw(10)
         << e.num("t_ms") << "ms " << std::defaultfloat << e.str("fabric")
         << " " << std::left << std::setw(12) << e.str("kind") << std::right
         << " epoch " << static_cast<long long>(e.num("epoch"));
      if (!e.str("event").empty()) os << " " << e.str("event");
      if (!e.str("step").empty()) os << " [" << e.str("step") << "]";
      if (e.num("wave_count") > 0) {
        os << " wave " << static_cast<long long>(e.num("wave_index")) << "/"
           << static_cast<long long>(e.num("wave_count"));
      }
      if (!e.str("verdict").empty()) os << " — " << e.str("verdict");
      os << "\n";
    }
  }
  os << static_cast<long long>(resp.num("total")) << " entries total, "
     << static_cast<long long>(resp.num("evicted"))
     << " evicted from the ring\n";
}

void render_metrics(std::ostream& os, const Json& resp) {
  if (resp.has("text")) {  // format=prom passes the exposition through
    os << resp.str("text");
    return;
  }
  const Json* report = resp.find("report");
  if (report == nullptr) return;
  const Json* counters = report->find("counters");
  if (counters != nullptr) {
    for (const auto& [name, value] : counters->members()) {
      os << name << " " << value.as_number() << "\n";
    }
  }
  const Json* hists = report->find("histograms");
  if (hists != nullptr) {
    for (const auto& [name, h] : hists->members()) {
      const auto buckets = histogram_buckets(*report, name);
      os << name << " count " << h.num("count") << " sum " << h.num("sum")
         << " p50 " << std::fixed << std::setprecision(1)
         << nue::telemetry::quantile_from_buckets(buckets, 0.5) << " p99 "
         << nue::telemetry::quantile_from_buckets(buckets, 0.99) << "\n";
    }
  }
}

/// One refreshing live view tick: per-shard status gauges plus the
/// request-latency SLO from the live histogram registry.
void render_watch_tick(std::ostream& os, const Json& status,
                       const Json& metrics) {
  os << "fabric            epoch     age[ms]  events  drains   waves   "
        "saves  rep p50/p99[ms]\n";
  const Json* fabrics = status.find("fabrics");
  if (fabrics != nullptr) {
    for (const Json& f : fabrics->items()) {
      std::ostringstream rep;
      rep << std::fixed << std::setprecision(1) << f.num("p50_repair_ms")
          << "/" << f.num("p99_repair_ms");
      os << std::left << std::setw(14) << f.str("fabric") << std::right
         << std::setw(8) << f.num("epoch") << std::setw(12) << std::fixed
         << std::setprecision(0) << f.num("epoch_age_ms") << std::setw(8)
         << f.num("events") << std::setw(8) << f.num("drained")
         << std::setw(8) << f.num("waves") << std::setw(8)
         << f.num("zero_drain_saves") << std::setw(18) << rep.str() << "\n";
    }
  }
  const Json* report = metrics.find("report");
  if (report != nullptr) {
    const auto req_us = histogram_buckets(*report, "service.request_us");
    os << "requests p50 "
       << nue::telemetry::quantile_from_buckets(req_us, 0.5) << " us, p99 "
       << nue::telemetry::quantile_from_buckets(req_us, 0.99) << " us";
    const Json* counters = report->find("counters");
    if (counters != nullptr) {
      os << "  (served " << counters->num("service.requests", 0)
         << ", errors " << counters->num("service.request_errors", 0)
         << ")";
    }
    os << "\n";
  }
}

int watch(const std::string& socket_path, const std::string& fabric,
          int interval_ms, int iterations) {
  for (int i = 0; iterations <= 0 || i < iterations; ++i) {
    Client client(socket_path);
    Json status_req = Json::object();
    status_req.set("op", "status");
    const Json status = client.request(status_req);
    Json metrics_req = Json::object();
    metrics_req.set("op", "metrics");
    const Json metrics = client.request(metrics_req);
    if (!status.boolean("ok") || !metrics.boolean("ok")) {
      std::cerr << "nue_routectl: watch: "
                << (status.boolean("ok") ? metrics.str("error")
                                         : status.str("error"))
                << "\n";
      return 2;
    }
    std::ostringstream frame;
    render_watch_tick(frame, status, metrics);
    if (isatty(STDOUT_FILENO) != 0) std::cout << "\033[H\033[2J";
    std::cout << frame.str();
    (void)fabric;
    std::cout.flush();
    if (iterations <= 0 || i + 1 < iterations) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  nue::Flags flags(argc, argv);
  const std::string socket_path =
      flags.get_string("socket", "", "nue_managerd socket path (required)");
  const std::string raw = flags.get_string(
      "request", "", "send this raw JSON request instead of building one");
  const std::string op = flags.get_string(
      "op", "status",
      "status|load|unload|route|tables|event|storm|reconfig-log|metrics|"
      "journal|watch|shutdown");
  const std::string fabric =
      flags.get_string("fabric", "", "target fabric name");
  const std::string generate =
      flags.get_string("generate", "", "load: generator spec");
  const std::string engine =
      flags.get_string("engine", "nue", "load: repair engine");
  const int vls = flags.get_int("vls", 2, "load: base VL budget");
  const int src = flags.get_int("src", -1, "route: source node id");
  const int dst = flags.get_int("dst", -1, "route: destination node id");
  const std::string kind = flags.get_string(
      "kind", "", "event: link-down|switch-down|link-restore|switch-restore");
  const int id = flags.get_int("id", -1, "event: channel/node id");
  const int events = flags.get_int("events", 16, "storm: event count");
  const int seed = flags.get_int("seed", 1, "load/storm: seed");
  const bool json_out = flags.get_bool(
      "json", false, "print the raw JSON response line (for scripts)");
  const std::string format = flags.get_string(
      "format", "json", "metrics: json|prom");
  const int tail = flags.get_int("tail", 20, "journal: newest N entries");
  const int interval_ms =
      flags.get_int("interval-ms", 1000, "watch: refresh interval");
  const int iterations = flags.get_int(
      "iterations", 0, "watch: stop after N ticks (0 = until interrupted)");
  if (!flags.finish()) return 1;
  if (socket_path.empty()) {
    std::cerr << "nue_routectl: --socket PATH is required\n";
    return 1;
  }

  try {
    if (raw.empty() && op == "watch") {
      return watch(socket_path, fabric, interval_ms, iterations);
    }
    Json req;
    if (!raw.empty()) {
      req = Json::parse(raw);
    } else {
      req = Json::object();
      req.set("op", op);
      if (!fabric.empty()) req.set("fabric", fabric);
      if (op == "load") {
        req.set("generate", generate);
        req.set("engine", engine);
        req.set("vls", vls);
        req.set("seed", seed);
      } else if (op == "route") {
        req.set("src", src);
        req.set("dst", dst);
      } else if (op == "event") {
        req.set("kind", kind);
        req.set("id", id);
      } else if (op == "storm") {
        req.set("events", events);
        req.set("seed", seed);
      } else if (op == "metrics") {
        req.set("format", format);
      } else if (op == "journal") {
        req.set("n", tail);
      }
    }
    Client client(socket_path);
    const Json resp = client.request(req);
    if (json_out) {
      std::cout << resp.dump() << "\n";
      return resp.boolean("ok") ? 0 : 2;
    }
    if (!resp.boolean("ok")) {
      // Enveloped daemon error: message to stderr, distinct exit code so
      // scripts can tell "daemon said no" from "couldn't reach daemon".
      std::cerr << "nue_routectl: " << resp.str("op", "request") << ": "
                << resp.str("error", "request failed") << "\n";
      return 2;
    }
    const std::string resp_op = resp.str("op");
    if (resp_op == "status") {
      render_status(std::cout, resp);
    } else if (resp_op == "route") {
      render_route(std::cout, resp);
    } else if (resp_op == "event") {
      render_event(std::cout, resp);
    } else if (resp_op == "storm") {
      render_storm(std::cout, resp);
    } else if (resp_op == "journal") {
      render_journal(std::cout, resp);
    } else if (resp_op == "metrics") {
      render_metrics(std::cout, resp);
    } else if (resp_op == "tables") {
      std::cout << resp.str("dump");
    } else if (resp_op == "reconfig-log") {
      std::cout << resp.str("log") << "\n";
    } else {
      // load/unload/shutdown and anything new: the envelope is the story.
      std::cout << resp.dump() << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "nue_routectl: " << e.what() << "\n";
    return 1;
  }
}
