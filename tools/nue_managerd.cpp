// nue_managerd — resident fabric-manager daemon (docs/SERVICE.md): load
// one or more fabrics as independent shards, keep each one's validated,
// deadlock-free routing table alive through a runtime fault/repair event
// stream (src/resilience), and serve route queries, table dumps, and
// status over line-delimited JSON on a Unix-domain socket.
//
//   nue_managerd --socket /tmp/nue.sock \
//       --load "a=torus:4x4:1@nue:2;b=random:20:50:2@dfsssp:8"
//
// --load grammar: semicolon-separated shards, each
// name=<generator spec>[@engine[:vls[:max_vls[:seed]]]] — the generator
// spec is the same colon grammar nue_route --generate takes
// (src/topology/generate.hpp). Further fabrics can be loaded over the
// protocol at runtime. A `shutdown` request (nue_routectl --op shutdown)
// winds the daemon down gracefully: in-flight connections drain, then
// the telemetry exporters flush — the run report embeds every shard's
// reconfiguration log as a "reconfig.<fabric>" section.
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include <fstream>

#include "service/server.hpp"
#include "service/service.hpp"
#include "telemetry/cli.hpp"
#include "telemetry/export.hpp"
#include "util/error.hpp"
#include "util/flags.hpp"
#include "util/thread_pool.hpp"

namespace {

nue::service::SocketServer* g_server = nullptr;

void handle_signal(int) {
  if (g_server != nullptr) g_server->stop();
}

struct LoadSpec {
  std::string name;
  std::string generate;
  nue::resilience::RepairPolicy policy;
};

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string item;
  while (std::getline(is, item, sep)) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

LoadSpec parse_load(const std::string& item, std::size_t log_max_records) {
  LoadSpec spec;
  spec.policy.log_max_records = log_max_records;
  const auto eq = item.find('=');
  NUE_CHECK_MSG(eq != std::string::npos && eq > 0,
                "--load entry '" << item << "' needs name=<generator spec>");
  spec.name = item.substr(0, eq);
  std::string rest = item.substr(eq + 1);
  const auto at = rest.find('@');
  if (at != std::string::npos) {
    const auto opts = split(rest.substr(at + 1), ':');
    rest = rest.substr(0, at);
    NUE_CHECK_MSG(!opts.empty(), "--load entry '" << item
                                 << "' has an empty @engine suffix");
    const auto engine = nue::resilience::engine_from_name(opts[0]);
    NUE_CHECK_MSG(engine.has_value(),
                  "unknown repair engine '" << opts[0] << "' in --load");
    spec.policy.engine = *engine;
    if (opts.size() > 1) {
      spec.policy.vls = static_cast<std::uint32_t>(std::stoul(opts[1]));
    }
    spec.policy.max_vls =
        opts.size() > 2 ? static_cast<std::uint32_t>(std::stoul(opts[2]))
                        : std::max(spec.policy.vls, 8u);
    if (opts.size() > 3) {
      spec.policy.seed = std::stoull(opts[3]);
    }
  }
  NUE_CHECK_MSG(!rest.empty(),
                "--load entry '" << item << "' has an empty generator spec");
  spec.generate = rest;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nue;
  Flags flags(argc, argv);
  const std::string socket_path = flags.get_string(
      "socket", "", "Unix-domain socket path to listen on (required)");
  const std::string load = flags.get_string(
      "load", "",
      "fabrics to load at startup: name=spec[@engine[:vls[:max_vls[:seed]]]]"
      ", ';'-separated");
  const auto log_max_records = static_cast<std::size_t>(flags.get_int(
      "log-max-records", 512,
      "per-shard ReconfigLog retention window (0 = unbounded)"));
  service::ObservabilityOptions obs;
  obs.journal_file = flags.get_string(
      "journal", "", "mirror the event journal to this JSONL file "
      "(rotates FILE -> FILE.1 at --journal-max-bytes)");
  obs.journal_capacity = static_cast<std::size_t>(flags.get_int(
      "journal-max-records", 4096, "in-memory journal ring capacity"));
  obs.journal_max_bytes = static_cast<std::size_t>(flags.get_int(
      "journal-max-bytes", 8 << 20,
      "journal file rotation threshold in bytes (0 = never rotate)"));
  obs.flightrec_dir = flags.get_string(
      "flightrec-dir", "",
      "write flightrec-<fabric>-<epoch>.json bundles here on gate "
      "failures ('' = flight recorder off)");
  obs.flightrec_max_bundles = static_cast<std::size_t>(flags.get_int(
      "flightrec-max-bundles", 16,
      "cap on flight-recorder bundles per process"));
  const std::string prom_out = flags.get_string(
      "prom-out", "",
      "write a Prometheus text exposition of the registry at shutdown "
      "(the live equivalent is the metrics op with format=prom)");
  telemetry::Cli telem;
  telem.register_flags(flags);
  const std::uint32_t threads = flags.get_threads();
  if (!flags.finish()) return 1;
  if (socket_path.empty()) {
    std::cerr << "nue_managerd: --socket PATH is required\n";
    return 1;
  }
  set_default_threads(threads);

  // The live plane is always on in the daemon: the `metrics`/`journal`
  // ops and the request-latency SLOs must answer whether or not anyone
  // asked for a shutdown flush. Telemetry never influences control flow
  // (routing tables are bit-identical either way — the offline-replay
  // cross-check in tests/test_service.cpp holds with it enabled), and
  // the central span log is bounded so a resident process can't grow
  // its trace without bound.
  telemetry::set_enabled(true);
  telemetry::Tracer::instance().set_collected_capacity(1 << 16);

  try {
    service::ManagerService svc(obs);
    for (const auto& item : split(load, ';')) {
      const LoadSpec spec = parse_load(item, log_max_records);
      svc.load(spec.name, spec.generate, spec.policy);
      std::cerr << "nue_managerd: loaded '" << spec.name << "' = "
                << spec.generate << " ("
                << resilience::engine_name(spec.policy.engine) << ", "
                << spec.policy.vls << " VLs)\n";
    }

    service::SocketServer server(socket_path, svc);
    g_server = &server;
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    std::cerr << "nue_managerd: serving on " << socket_path << "\n";
    server.serve();
    g_server = nullptr;
    std::cerr << "nue_managerd: shutting down\n";

    if (telem.wanted()) {
      telem.finish("nue_managerd",
                   {{"socket", socket_path},
                    {"load", load},
                    {"threads", std::to_string(threads)}},
                   svc.report_sections());
    }
    if (!prom_out.empty()) {
      std::ofstream os(prom_out);
      if (!os) {
        std::cerr << "cannot write --prom-out " << prom_out << "\n";
      } else {
        telemetry::write_prometheus_text(os);
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "nue_managerd: " << e.what() << "\n";
    return 1;
  }
}
