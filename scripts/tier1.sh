#!/usr/bin/env bash
# Tier-1 verification: the standard build + full test suite, then a
# ThreadSanitizer build running the parallel-determinism suite (the tests
# that exercise the thread pool across engines; see docs/PARALLELISM.md).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j

cmake -B build-tsan -S . -DSANITIZE=thread
cmake --build build-tsan -j --target nue_tests
TSAN_OPTIONS="halt_on_error=1" \
  ./build-tsan/tests/nue_tests --gtest_filter='ParallelDeterminism.*'

echo "tier-1 OK"
