#!/usr/bin/env bash
# Tier-1 verification: the standard build + full test suite, then a
# ThreadSanitizer build running the parallel-determinism suite (the tests
# that exercise the thread pool across engines; see docs/PARALLELISM.md),
# then a UBSan build running the fixed-seed fuzz smoke corpus (every
# topology generator x routing engine through the invariant oracle; see
# docs/FUZZING.md — a larger randomized sweep is `route_fuzz --nightly`).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j

cmake -B build-tsan -S . -DSANITIZE=thread
cmake --build build-tsan -j --target nue_tests
TSAN_OPTIONS="halt_on_error=1" \
  ./build-tsan/tests/nue_tests --gtest_filter='ParallelDeterminism.*'

cmake -B build-ubsan -S . -DSANITIZE=undefined
cmake --build build-ubsan -j --target route_fuzz
UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1" \
  ./build-ubsan/tools/route_fuzz --smoke

echo "tier-1 OK"
