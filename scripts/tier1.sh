#!/usr/bin/env bash
# Tier-1 verification: the standard build + full test suite, then a
# ThreadSanitizer build running the parallel-determinism suite (the tests
# that exercise the thread pool across engines; see docs/PARALLELISM.md),
# then a UBSan build running the fixed-seed fuzz smoke corpus (every
# topology generator x routing engine through the invariant oracle; see
# docs/FUZZING.md — a larger randomized sweep is `route_fuzz --nightly`).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j

cmake -B build-tsan -S . -DSANITIZE=thread
cmake --build build-tsan -j --target nue_tests
TSAN_OPTIONS="halt_on_error=1" \
  ./build-tsan/tests/nue_tests --gtest_filter='ParallelDeterminism.*'

cmake -B build-ubsan -S . -DSANITIZE=undefined
cmake --build build-ubsan -j --target route_fuzz
UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1" \
  ./build-ubsan/tools/route_fuzz --smoke

# Live-reconfiguration smoke (docs/RESILIENCE.md): replay the committed
# runtime fault trace through the resilience manager under ASan — the
# full event -> repair ladder -> union-CDG gate -> swap loop; nue_route
# exits non-zero unless the final table passes the validation oracle —
# then a randomized fault/repair sweep through the fuzzer's
# reconfiguration oracle, which re-validates every committed epoch and
# re-proves every hitless gate.
cmake -B build-asan -S . -DSANITIZE=address
cmake --build build-asan -j --target nue_route
ASAN_OPTIONS="halt_on_error=1" \
  ./build-asan/tools/nue_route \
  --fault-trace tests/corpus/torus-4x4x3-runtime.trace --routing nue --vls 4
UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1" \
  ./build-ubsan/tools/route_fuzz --reconfig --count 40

echo "tier-1 OK"
