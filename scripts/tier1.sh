#!/usr/bin/env bash
# Tier-1 verification: the standard build + full test suite, then a
# ThreadSanitizer build running the parallel-determinism suite (the tests
# that exercise the thread pool across engines; see docs/PARALLELISM.md),
# then a UBSan build running the fixed-seed fuzz smoke corpus (every
# topology generator x routing engine through the invariant oracle; see
# docs/FUZZING.md — a larger randomized sweep is `route_fuzz --nightly`).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j

# TSan also covers the churn regressions, the daemon's concurrent
# query-during-storm path (epoch-snapshot reads racing repair commits),
# the wave-scheduler suite (multi-epoch migration chains committing
# through the same swap while readers hold table snapshots), the
# live observability plane (scraper threads reading metrics/journal
# against an in-flight storm), and the event-engine suites (the engine
# itself is single-threaded, but its runs sit downstream of the
# thread-pooled routing phase).
cmake -B build-tsan -S . -DSANITIZE=thread
cmake --build build-tsan -j --target nue_tests
TSAN_OPTIONS="halt_on_error=1" \
  ./build-tsan/tests/nue_tests \
  --gtest_filter='ParallelDeterminism.*:NetworkChurn.*:ResilienceChurn.*:Daemon.*:WaveScheduler.*:LivePlane.*:EventSim.*:SimParity.*:Scenario.*'

cmake -B build-ubsan -S . -DSANITIZE=undefined
cmake --build build-ubsan -j --target route_fuzz
UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1" \
  ./build-ubsan/tools/route_fuzz --smoke

# Live-reconfiguration smoke (docs/RESILIENCE.md): replay the committed
# runtime fault trace through the resilience manager under ASan — the
# full event -> repair ladder -> union-CDG gate -> swap loop; nue_route
# exits non-zero unless the final table passes the validation oracle —
# then a randomized fault/repair sweep through the fuzzer's
# reconfiguration oracle, which re-validates every committed epoch and
# re-proves every hitless gate.
cmake -B build-asan -S . -DSANITIZE=address
cmake --build build-asan -j --target nue_route
ASAN_OPTIONS="halt_on_error=1" \
  ./build-asan/tools/nue_route \
  --fault-trace tests/corpus/torus-4x4x3-runtime.trace --routing nue --vls 4
UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1" \
  ./build-ubsan/tools/route_fuzz --reconfig --count 40

# Telemetry stage (docs/OBSERVABILITY.md): trace a routed faulted torus
# under TSan — the per-thread span rings and atomic registry must be
# provably race-free while the pool is engaged — then validate both
# exporter outputs against the bundled JSON schemas. The fixed config is
# known to exercise Nue's escape machinery, so the counters the
# acceptance gate watches must be nonzero; pool spans prove the worker
# threads were traced, not just the caller.
cmake --build build-tsan -j --target nue_route
TSAN_OPTIONS="halt_on_error=1" \
  ./build-tsan/tools/nue_route --generate torus:5x5x5:4 --fail-links 4 \
  --fault-seed 11 --routing nue --vls 8 --threads 8 \
  --trace-out build-tsan/telemetry.trace.json \
  --metrics-out build-tsan/telemetry.metrics.json
python3 scripts/validate_json.py scripts/schemas/chrome_trace.schema.json \
  build-tsan/telemetry.trace.json
python3 scripts/validate_json.py scripts/schemas/run_report.schema.json \
  build-tsan/telemetry.metrics.json \
  --nonzero counters/nue.backtracks \
  --nonzero counters/nue.omega_hits \
  --nonzero spans/by_name/nue.layer/count \
  --nonzero spans/by_name/pool.caller/count \
  --nonzero spans/by_name/validate.routing/count

# Daemon smoke (docs/SERVICE.md): nue_managerd under ASan — startup with
# two shards, a route query, a fault event through the repair ladder,
# a post-event query, then a protocol-driven clean shutdown; the churn
# regression tests (adjacency-pool accounting, resilience-manager reuse)
# run under the same ASan build. Responses are schema-checked against
# the protocol envelope, and the run report flushed at shutdown must
# carry the service counters plus the shard's reconfig section.
cmake --build build-asan -j --target nue_managerd nue_routectl nue_tests
ASAN_OPTIONS="halt_on_error=1" \
  ./build-asan/tests/nue_tests \
  --gtest_filter='NetworkChurn.*:ResilienceChurn.*:Daemon.*:WaveScheduler.*:LivePlane.*:EventSim.*:SimParity.*:Scenario.*'
MANAGERD_SOCK="build-asan/managerd.sock"
rm -rf build-asan/flightrec build-asan/managerd.journal.jsonl
ASAN_OPTIONS="halt_on_error=1" \
  ./build-asan/tools/nue_managerd --socket "$MANAGERD_SOCK" \
  --load "a=torus:4x4:1@nue:2;b=random:20:50:2@dfsssp:8" \
  --metrics-out build-asan/managerd.metrics.json \
  --journal build-asan/managerd.journal.jsonl \
  --flightrec-dir build-asan/flightrec \
  --prom-out build-asan/managerd.prom &
MANAGERD_PID=$!
for _ in $(seq 1 100); do
  [ -S "$MANAGERD_SOCK" ] && break
  sleep 0.1
done
./build-asan/tools/nue_routectl --socket "$MANAGERD_SOCK" --op status --json \
  > build-asan/managerd.status.json
./build-asan/tools/nue_routectl --socket "$MANAGERD_SOCK" --op route --json \
  --fabric a --src 16 --dst 31 > build-asan/managerd.route1.json
./build-asan/tools/nue_routectl --socket "$MANAGERD_SOCK" --op event --json \
  --fabric a --kind link-down --id 4 > build-asan/managerd.event.json
./build-asan/tools/nue_routectl --socket "$MANAGERD_SOCK" --op route --json \
  --fabric a --src 16 --dst 31 > build-asan/managerd.route2.json
# Zero-drain storm smoke (docs/RESILIENCE.md): a 200-event fault/repair
# storm on the live shard under ASan. The fixed seed is known to force
# dozens of union-gate failures on this fabric, and with the wave
# scheduler armed every one must commit as a migration chain — the
# shutdown report's resilience.drains counter is asserted exactly zero
# (the counter is always emitted, so a silent rename cannot pass).
# The storm runs in the background and the live plane is scraped against
# it mid-flight: two `metrics` snapshots (schema-valid, counters
# monotone between them — the torn-scrape gate) plus a `journal` tail.
./build-asan/tools/nue_routectl --socket "$MANAGERD_SOCK" --op storm --json \
  --fabric a --events 200 --seed 1 > build-asan/managerd.storm.json &
STORM_PID=$!
./build-asan/tools/nue_routectl --socket "$MANAGERD_SOCK" --op metrics --json \
  > build-asan/managerd.metrics1.json
./build-asan/tools/nue_routectl --socket "$MANAGERD_SOCK" --op metrics --json \
  > build-asan/managerd.metrics2.json
./build-asan/tools/nue_routectl --socket "$MANAGERD_SOCK" --op journal --json \
  > build-asan/managerd.journal.json
./build-asan/tools/nue_routectl --socket "$MANAGERD_SOCK" --op watch \
  --iterations 1 > build-asan/managerd.watch.txt
wait "$STORM_PID"
./build-asan/tools/nue_routectl --socket "$MANAGERD_SOCK" --op status --json \
  > build-asan/managerd.status2.json
./build-asan/tools/nue_routectl --socket "$MANAGERD_SOCK" --op shutdown --json
wait "$MANAGERD_PID"
for resp in status route1 event route2 storm status2; do
  python3 scripts/validate_json.py scripts/schemas/managerd.schema.json \
    "build-asan/managerd.$resp.json"
done
python3 scripts/validate_json.py scripts/schemas/managerd.schema.json \
  build-asan/managerd.storm.json \
  --nonzero waved \
  --zero drains
python3 scripts/validate_json.py scripts/schemas/live_metrics.schema.json \
  build-asan/managerd.metrics2.json \
  --require-monotonic build-asan/managerd.metrics1.json \
  --nonzero report/counters/service.requests
python3 scripts/validate_json.py scripts/schemas/journal.schema.json \
  build-asan/managerd.journal.json \
  --nonzero total
grep -q 'epoch' build-asan/managerd.watch.txt
# The storm's union-gate failures must have tripped the flight recorder,
# and the shutdown Prometheus exposition must carry the service SLOs.
ls build-asan/flightrec/flightrec-a-*.json > /dev/null
python3 -c "import json,glob; json.load(open(glob.glob('build-asan/flightrec/flightrec-a-*.json')[0]))"
grep -q '^service_request_us_bucket{le="+Inf"}' build-asan/managerd.prom
grep -q '^# TYPE service_requests counter' build-asan/managerd.prom
python3 -c "
import json
lines = [json.loads(l) for l in open('build-asan/managerd.journal.jsonl')]
assert lines, 'journal mirror is empty'
assert any(e['kind'] == 'gate-failure' for e in lines), 'no gate-failure journaled'
seqs = [e['seq'] for e in lines]
assert seqs == sorted(seqs), 'journal mirror out of order'
"
python3 scripts/validate_json.py scripts/schemas/run_report.schema.json \
  build-asan/managerd.metrics.json \
  --nonzero counters/service.requests \
  --nonzero counters/service.route_queries \
  --nonzero counters/service.fault_events \
  --nonzero counters/resilience.transitions \
  --nonzero counters/resilience.waves \
  --nonzero counters/resilience.zero_drain_saves \
  --zero counters/resilience.drains \
  --nonzero reconfig.a/transitions

# Scale-bench smoke (docs/SCALING.md): tiny fabrics through the full
# sweep machinery — sampled destinations, pivot-sampled escape roots,
# validation oracle, peak-RSS capture — then the emitted records are
# schema-checked. The bench exits non-zero if any fabric fails to route
# or validate, so this gate catches scale-path regressions cheaply; the
# full 10^5-switch sweep is a manual `bench_scale` run.
./build/bench/bench_scale --smoke --json build/BENCH_scale.json
python3 scripts/validate_json.py scripts/schemas/bench_scale.schema.json \
  build/BENCH_scale.json \
  --nonzero peak_rss_mb \
  --nonzero records

# Simulation-bench smoke (docs/SIMULATION.md): a tiny torus through the
# full sim-scale machinery — scenario parsing, the event engine with
# phase spans, and the event-vs-cycle head-to-head, whose delivered
# totals the bench itself asserts byte-identical (exit 2 on divergence).
# total_events proves the event path actually ran; the full 10^5-switch
# head-to-head is a manual `bench_sim_scale` run.
./build/bench/bench_sim_scale --smoke --json build/BENCH_sim.json
python3 scripts/validate_json.py scripts/schemas/bench_sim.schema.json \
  build/BENCH_sim.json \
  --nonzero total_events \
  --nonzero records

echo "tier-1 OK"
