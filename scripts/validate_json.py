#!/usr/bin/env python3
"""Validate a JSON document against a bundled schema (std-lib only).

The container has no jsonschema package, so this implements the small
JSON-Schema subset the telemetry schemas in scripts/schemas/ use:
type, required, properties, additionalProperties, items, enum,
minimum, minItems.

Extra assertions beyond the schema:
  --nonzero PATH   require the value at PATH to be a number > 0 (or a
                   non-empty container). PATH segments are separated by
                   '/' because metric names themselves contain dots,
                   e.g. --nonzero counters/nue.backtracks
  --zero PATH      require the value at PATH to exist and be exactly 0.
                   The path must be present — a counter that was never
                   touched does not count as zero (the zero-drain
                   acceptance gate wants proof the drain path was armed
                   and never fired), e.g. --zero counters/resilience.drains
  --require-monotonic PREV.json
                   require every counter and every histogram count/sum
                   present in PREV to be <= its value in DOC. PREV and
                   DOC may each be a live `metrics` response (sections
                   under "report") or a run report (sections at top
                   level). This is the torn-scrape detector for the
                   daemon's live plane: two successive in-flight scrapes
                   of a monotone registry must never go backwards.

Usage:
  validate_json.py SCHEMA DOC [--nonzero PATH]... [--zero PATH]...
                   [--require-monotonic PREV.json]...
Exit code 0 = valid, 1 = violation (printed to stderr).
"""
import json
import sys

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


def _type_ok(value, name):
    if name == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if name == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    return isinstance(value, _TYPES[name])


def validate(value, schema, path, errors):
    t = schema.get("type")
    if t is not None and not _type_ok(value, t):
        errors.append(f"{path}: expected {t}, got {type(value).__name__}")
        return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']}")
    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool) and value < schema["minimum"]:
        errors.append(f"{path}: {value} < minimum {schema['minimum']}")
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required property '{key}'")
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties")
        for key, sub in value.items():
            if key in props:
                validate(sub, props[key], f"{path}/{key}", errors)
            elif isinstance(extra, dict):
                validate(sub, extra, f"{path}/{key}", errors)
            elif extra is False:
                errors.append(f"{path}: unexpected property '{key}'")
    if isinstance(value, list):
        if "minItems" in schema and len(value) < schema["minItems"]:
            errors.append(
                f"{path}: {len(value)} items < minItems {schema['minItems']}")
        items = schema.get("items")
        if isinstance(items, dict):
            for i, sub in enumerate(value):
                validate(sub, items, f"{path}/{i}", errors)


def _metric_sections(doc):
    """Counters/histograms of either a live `metrics` response (nested
    under "report") or a run report (top level)."""
    root = doc.get("report", doc) if isinstance(doc, dict) else {}
    if not isinstance(root, dict):
        root = {}
    return root.get("counters") or {}, root.get("histograms") or {}


def check_monotonic(prev, doc, prev_path, errors):
    prev_counters, prev_hists = _metric_sections(prev)
    counters, hists = _metric_sections(doc)
    for name, before in prev_counters.items():
        after = counters.get(name)
        if not isinstance(after, (int, float)) or isinstance(after, bool):
            errors.append(
                f"--require-monotonic: counter '{name}' present in "
                f"{prev_path} but not here")
        elif after < before:
            errors.append(
                f"--require-monotonic: counter '{name}' went backwards "
                f"({before} -> {after})")
    for name, before in prev_hists.items():
        after = hists.get(name)
        if not isinstance(after, dict):
            errors.append(
                f"--require-monotonic: histogram '{name}' present in "
                f"{prev_path} but not here")
            continue
        for field in ("count", "sum"):
            if after.get(field, 0) < before.get(field, 0):
                errors.append(
                    f"--require-monotonic: histogram '{name}' {field} went "
                    f"backwards ({before.get(field)} -> {after.get(field)})")


def lookup(doc, path):
    node = doc
    for seg in path.split("/"):
        if not isinstance(node, dict) or seg not in node:
            return None
        node = node[seg]
    return node


def main(argv):
    if len(argv) < 3:
        print(__doc__, file=sys.stderr)
        return 1
    schema_path, doc_path = argv[1], argv[2]
    nonzero = []
    zero = []
    monotonic = []
    args = argv[3:]
    while args:
        if args[0] == "--nonzero" and len(args) >= 2:
            nonzero.append(args[1])
            args = args[2:]
        elif args[0] == "--zero" and len(args) >= 2:
            zero.append(args[1])
            args = args[2:]
        elif args[0] == "--require-monotonic" and len(args) >= 2:
            monotonic.append(args[1])
            args = args[2:]
        else:
            print(f"unknown argument {args[0]}", file=sys.stderr)
            return 1
    with open(schema_path) as f:
        schema = json.load(f)
    try:
        with open(doc_path) as f:
            doc = json.load(f)
    except json.JSONDecodeError as e:
        print(f"{doc_path}: not valid JSON: {e}", file=sys.stderr)
        return 1

    errors = []
    validate(doc, schema, "$", errors)
    for prev_path in monotonic:
        try:
            with open(prev_path) as f:
                prev = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            errors.append(f"--require-monotonic {prev_path}: {e}")
            continue
        check_monotonic(prev, doc, prev_path, errors)
    for path in nonzero:
        value = lookup(doc, path)
        if value is None:
            errors.append(f"--nonzero {path}: path not found")
        elif isinstance(value, bool) or not isinstance(value, (int, float)):
            if not value:  # non-empty container / string also accepted
                errors.append(f"--nonzero {path}: empty")
        elif value <= 0:
            errors.append(f"--nonzero {path}: {value} is not > 0")
    for path in zero:
        value = lookup(doc, path)
        if value is None:
            errors.append(f"--zero {path}: path not found")
        elif isinstance(value, bool) or not isinstance(value, (int, float)):
            errors.append(
                f"--zero {path}: not a number ({type(value).__name__})")
        elif value != 0:
            errors.append(f"--zero {path}: {value} is not 0")
    if errors:
        for e in errors:
            print(f"{doc_path}: {e}", file=sys.stderr)
        return 1
    print(f"{doc_path}: OK ({len(nonzero)} nonzero, {len(zero)} zero, "
          f"{len(monotonic)} monotonic checks)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
