# Empty dependencies file for nue_route.
# This may be replaced when dependencies are built.
