file(REMOVE_RECURSE
  "CMakeFiles/nue_route.dir/nue_route.cpp.o"
  "CMakeFiles/nue_route.dir/nue_route.cpp.o.d"
  "nue_route"
  "nue_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nue_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
