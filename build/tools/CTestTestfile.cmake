# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_nue_torus "/root/repo/build/tools/nue_route" "--generate" "torus:3x3x3:2" "--routing" "nue" "--vls" "2" "--compile-ib")
set_tests_properties(cli_nue_torus PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_dfsssp_random "/root/repo/build/tools/nue_route" "--generate" "random:20:50:2" "--routing" "dfsssp" "--vls" "8" "--simulate" "--shift-samples" "2")
set_tests_properties(cli_dfsssp_random PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_torus_qos "/root/repo/build/tools/nue_route" "--generate" "torus:4x4:2" "--routing" "torus-qos" "--compile-ib")
set_tests_properties(cli_torus_qos PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_updown_fattree "/root/repo/build/tools/nue_route" "--generate" "fattree:3:3:3" "--routing" "updown")
set_tests_properties(cli_updown_fattree PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_hyperx "/root/repo/build/tools/nue_route" "--generate" "hyperx:3x3:2" "--routing" "nue" "--vls" "1" "--simulate" "--shift-samples" "2")
set_tests_properties(cli_hyperx PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
