file(REMOVE_RECURSE
  "libnue_sim.a"
)
