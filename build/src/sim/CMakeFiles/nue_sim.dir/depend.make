# Empty dependencies file for nue_sim.
# This may be replaced when dependencies are built.
