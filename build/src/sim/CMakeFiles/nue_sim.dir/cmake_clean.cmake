file(REMOVE_RECURSE
  "CMakeFiles/nue_sim.dir/flit_sim.cpp.o"
  "CMakeFiles/nue_sim.dir/flit_sim.cpp.o.d"
  "CMakeFiles/nue_sim.dir/traffic.cpp.o"
  "CMakeFiles/nue_sim.dir/traffic.cpp.o.d"
  "libnue_sim.a"
  "libnue_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nue_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
