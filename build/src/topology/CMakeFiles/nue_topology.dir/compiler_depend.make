# Empty compiler generated dependencies file for nue_topology.
# This may be replaced when dependencies are built.
