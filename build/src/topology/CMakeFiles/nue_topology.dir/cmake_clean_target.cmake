file(REMOVE_RECURSE
  "libnue_topology.a"
)
