
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/fabric_io.cpp" "src/topology/CMakeFiles/nue_topology.dir/fabric_io.cpp.o" "gcc" "src/topology/CMakeFiles/nue_topology.dir/fabric_io.cpp.o.d"
  "/root/repo/src/topology/faults.cpp" "src/topology/CMakeFiles/nue_topology.dir/faults.cpp.o" "gcc" "src/topology/CMakeFiles/nue_topology.dir/faults.cpp.o.d"
  "/root/repo/src/topology/misc_topologies.cpp" "src/topology/CMakeFiles/nue_topology.dir/misc_topologies.cpp.o" "gcc" "src/topology/CMakeFiles/nue_topology.dir/misc_topologies.cpp.o.d"
  "/root/repo/src/topology/torus.cpp" "src/topology/CMakeFiles/nue_topology.dir/torus.cpp.o" "gcc" "src/topology/CMakeFiles/nue_topology.dir/torus.cpp.o.d"
  "/root/repo/src/topology/trees.cpp" "src/topology/CMakeFiles/nue_topology.dir/trees.cpp.o" "gcc" "src/topology/CMakeFiles/nue_topology.dir/trees.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/nue_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
