file(REMOVE_RECURSE
  "CMakeFiles/nue_topology.dir/fabric_io.cpp.o"
  "CMakeFiles/nue_topology.dir/fabric_io.cpp.o.d"
  "CMakeFiles/nue_topology.dir/faults.cpp.o"
  "CMakeFiles/nue_topology.dir/faults.cpp.o.d"
  "CMakeFiles/nue_topology.dir/misc_topologies.cpp.o"
  "CMakeFiles/nue_topology.dir/misc_topologies.cpp.o.d"
  "CMakeFiles/nue_topology.dir/torus.cpp.o"
  "CMakeFiles/nue_topology.dir/torus.cpp.o.d"
  "CMakeFiles/nue_topology.dir/trees.cpp.o"
  "CMakeFiles/nue_topology.dir/trees.cpp.o.d"
  "libnue_topology.a"
  "libnue_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nue_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
