file(REMOVE_RECURSE
  "CMakeFiles/nue_partition.dir/partition.cpp.o"
  "CMakeFiles/nue_partition.dir/partition.cpp.o.d"
  "libnue_partition.a"
  "libnue_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nue_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
