# Empty compiler generated dependencies file for nue_partition.
# This may be replaced when dependencies are built.
