file(REMOVE_RECURSE
  "libnue_partition.a"
)
