# Empty compiler generated dependencies file for nue_metrics.
# This may be replaced when dependencies are built.
