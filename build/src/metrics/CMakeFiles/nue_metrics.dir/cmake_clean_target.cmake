file(REMOVE_RECURSE
  "libnue_metrics.a"
)
