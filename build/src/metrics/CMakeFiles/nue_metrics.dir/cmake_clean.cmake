file(REMOVE_RECURSE
  "CMakeFiles/nue_metrics.dir/metrics.cpp.o"
  "CMakeFiles/nue_metrics.dir/metrics.cpp.o.d"
  "libnue_metrics.a"
  "libnue_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nue_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
