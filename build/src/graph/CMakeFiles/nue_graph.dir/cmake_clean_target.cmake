file(REMOVE_RECURSE
  "libnue_graph.a"
)
