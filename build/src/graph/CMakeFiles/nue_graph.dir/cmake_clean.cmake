file(REMOVE_RECURSE
  "CMakeFiles/nue_graph.dir/algorithms.cpp.o"
  "CMakeFiles/nue_graph.dir/algorithms.cpp.o.d"
  "libnue_graph.a"
  "libnue_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nue_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
