# Empty compiler generated dependencies file for nue_graph.
# This may be replaced when dependencies are built.
