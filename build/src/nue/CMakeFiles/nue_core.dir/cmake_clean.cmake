file(REMOVE_RECURSE
  "CMakeFiles/nue_core.dir/nue_routing.cpp.o"
  "CMakeFiles/nue_core.dir/nue_routing.cpp.o.d"
  "libnue_core.a"
  "libnue_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nue_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
