file(REMOVE_RECURSE
  "libnue_core.a"
)
