# Empty compiler generated dependencies file for nue_core.
# This may be replaced when dependencies are built.
