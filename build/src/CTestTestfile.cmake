# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("heap")
subdirs("graph")
subdirs("partition")
subdirs("topology")
subdirs("routing")
subdirs("nue")
subdirs("sim")
subdirs("metrics")
