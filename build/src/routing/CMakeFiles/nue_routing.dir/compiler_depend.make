# Empty compiler generated dependencies file for nue_routing.
# This may be replaced when dependencies are built.
