file(REMOVE_RECURSE
  "libnue_routing.a"
)
