
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/dfsssp.cpp" "src/routing/CMakeFiles/nue_routing.dir/dfsssp.cpp.o" "gcc" "src/routing/CMakeFiles/nue_routing.dir/dfsssp.cpp.o.d"
  "/root/repo/src/routing/dump.cpp" "src/routing/CMakeFiles/nue_routing.dir/dump.cpp.o" "gcc" "src/routing/CMakeFiles/nue_routing.dir/dump.cpp.o.d"
  "/root/repo/src/routing/fattree_routing.cpp" "src/routing/CMakeFiles/nue_routing.dir/fattree_routing.cpp.o" "gcc" "src/routing/CMakeFiles/nue_routing.dir/fattree_routing.cpp.o.d"
  "/root/repo/src/routing/ib_tables.cpp" "src/routing/CMakeFiles/nue_routing.dir/ib_tables.cpp.o" "gcc" "src/routing/CMakeFiles/nue_routing.dir/ib_tables.cpp.o.d"
  "/root/repo/src/routing/lash.cpp" "src/routing/CMakeFiles/nue_routing.dir/lash.cpp.o" "gcc" "src/routing/CMakeFiles/nue_routing.dir/lash.cpp.o.d"
  "/root/repo/src/routing/sssp_engine.cpp" "src/routing/CMakeFiles/nue_routing.dir/sssp_engine.cpp.o" "gcc" "src/routing/CMakeFiles/nue_routing.dir/sssp_engine.cpp.o.d"
  "/root/repo/src/routing/torus_qos.cpp" "src/routing/CMakeFiles/nue_routing.dir/torus_qos.cpp.o" "gcc" "src/routing/CMakeFiles/nue_routing.dir/torus_qos.cpp.o.d"
  "/root/repo/src/routing/updown.cpp" "src/routing/CMakeFiles/nue_routing.dir/updown.cpp.o" "gcc" "src/routing/CMakeFiles/nue_routing.dir/updown.cpp.o.d"
  "/root/repo/src/routing/validate.cpp" "src/routing/CMakeFiles/nue_routing.dir/validate.cpp.o" "gcc" "src/routing/CMakeFiles/nue_routing.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/nue_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/nue_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
