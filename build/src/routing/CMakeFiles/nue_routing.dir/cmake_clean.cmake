file(REMOVE_RECURSE
  "CMakeFiles/nue_routing.dir/dfsssp.cpp.o"
  "CMakeFiles/nue_routing.dir/dfsssp.cpp.o.d"
  "CMakeFiles/nue_routing.dir/dump.cpp.o"
  "CMakeFiles/nue_routing.dir/dump.cpp.o.d"
  "CMakeFiles/nue_routing.dir/fattree_routing.cpp.o"
  "CMakeFiles/nue_routing.dir/fattree_routing.cpp.o.d"
  "CMakeFiles/nue_routing.dir/ib_tables.cpp.o"
  "CMakeFiles/nue_routing.dir/ib_tables.cpp.o.d"
  "CMakeFiles/nue_routing.dir/lash.cpp.o"
  "CMakeFiles/nue_routing.dir/lash.cpp.o.d"
  "CMakeFiles/nue_routing.dir/sssp_engine.cpp.o"
  "CMakeFiles/nue_routing.dir/sssp_engine.cpp.o.d"
  "CMakeFiles/nue_routing.dir/torus_qos.cpp.o"
  "CMakeFiles/nue_routing.dir/torus_qos.cpp.o.d"
  "CMakeFiles/nue_routing.dir/updown.cpp.o"
  "CMakeFiles/nue_routing.dir/updown.cpp.o.d"
  "CMakeFiles/nue_routing.dir/validate.cpp.o"
  "CMakeFiles/nue_routing.dir/validate.cpp.o.d"
  "libnue_routing.a"
  "libnue_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nue_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
