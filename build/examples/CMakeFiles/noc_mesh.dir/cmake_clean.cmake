file(REMOVE_RECURSE
  "CMakeFiles/noc_mesh.dir/noc_mesh.cpp.o"
  "CMakeFiles/noc_mesh.dir/noc_mesh.cpp.o.d"
  "noc_mesh"
  "noc_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noc_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
