file(REMOVE_RECURSE
  "CMakeFiles/vc_budget_planning.dir/vc_budget_planning.cpp.o"
  "CMakeFiles/vc_budget_planning.dir/vc_budget_planning.cpp.o.d"
  "vc_budget_planning"
  "vc_budget_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc_budget_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
