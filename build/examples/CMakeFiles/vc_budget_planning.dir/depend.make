# Empty dependencies file for vc_budget_planning.
# This may be replaced when dependencies are built.
