# Empty compiler generated dependencies file for fail_in_place.
# This may be replaced when dependencies are built.
