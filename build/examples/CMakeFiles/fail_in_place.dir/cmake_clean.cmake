file(REMOVE_RECURSE
  "CMakeFiles/fail_in_place.dir/fail_in_place.cpp.o"
  "CMakeFiles/fail_in_place.dir/fail_in_place.cpp.o.d"
  "fail_in_place"
  "fail_in_place.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fail_in_place.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
