
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_adaptive_sim.cpp" "tests/CMakeFiles/nue_tests.dir/test_adaptive_sim.cpp.o" "gcc" "tests/CMakeFiles/nue_tests.dir/test_adaptive_sim.cpp.o.d"
  "/root/repo/tests/test_api_surface.cpp" "tests/CMakeFiles/nue_tests.dir/test_api_surface.cpp.o" "gcc" "tests/CMakeFiles/nue_tests.dir/test_api_surface.cpp.o.d"
  "/root/repo/tests/test_cdg.cpp" "tests/CMakeFiles/nue_tests.dir/test_cdg.cpp.o" "gcc" "tests/CMakeFiles/nue_tests.dir/test_cdg.cpp.o.d"
  "/root/repo/tests/test_complete_cdg_property.cpp" "tests/CMakeFiles/nue_tests.dir/test_complete_cdg_property.cpp.o" "gcc" "tests/CMakeFiles/nue_tests.dir/test_complete_cdg_property.cpp.o.d"
  "/root/repo/tests/test_dump.cpp" "tests/CMakeFiles/nue_tests.dir/test_dump.cpp.o" "gcc" "tests/CMakeFiles/nue_tests.dir/test_dump.cpp.o.d"
  "/root/repo/tests/test_extension_sweeps.cpp" "tests/CMakeFiles/nue_tests.dir/test_extension_sweeps.cpp.o" "gcc" "tests/CMakeFiles/nue_tests.dir/test_extension_sweeps.cpp.o.d"
  "/root/repo/tests/test_fabric_io.cpp" "tests/CMakeFiles/nue_tests.dir/test_fabric_io.cpp.o" "gcc" "tests/CMakeFiles/nue_tests.dir/test_fabric_io.cpp.o.d"
  "/root/repo/tests/test_graph.cpp" "tests/CMakeFiles/nue_tests.dir/test_graph.cpp.o" "gcc" "tests/CMakeFiles/nue_tests.dir/test_graph.cpp.o.d"
  "/root/repo/tests/test_heap.cpp" "tests/CMakeFiles/nue_tests.dir/test_heap.cpp.o" "gcc" "tests/CMakeFiles/nue_tests.dir/test_heap.cpp.o.d"
  "/root/repo/tests/test_ib_tables.cpp" "tests/CMakeFiles/nue_tests.dir/test_ib_tables.cpp.o" "gcc" "tests/CMakeFiles/nue_tests.dir/test_ib_tables.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/nue_tests.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/nue_tests.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/test_nue.cpp" "tests/CMakeFiles/nue_tests.dir/test_nue.cpp.o" "gcc" "tests/CMakeFiles/nue_tests.dir/test_nue.cpp.o.d"
  "/root/repo/tests/test_paper_examples.cpp" "tests/CMakeFiles/nue_tests.dir/test_paper_examples.cpp.o" "gcc" "tests/CMakeFiles/nue_tests.dir/test_paper_examples.cpp.o.d"
  "/root/repo/tests/test_partition.cpp" "tests/CMakeFiles/nue_tests.dir/test_partition.cpp.o" "gcc" "tests/CMakeFiles/nue_tests.dir/test_partition.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/nue_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/nue_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_reroute.cpp" "tests/CMakeFiles/nue_tests.dir/test_reroute.cpp.o" "gcc" "tests/CMakeFiles/nue_tests.dir/test_reroute.cpp.o.d"
  "/root/repo/tests/test_routing_baselines.cpp" "tests/CMakeFiles/nue_tests.dir/test_routing_baselines.cpp.o" "gcc" "tests/CMakeFiles/nue_tests.dir/test_routing_baselines.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/nue_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/nue_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_topology.cpp" "tests/CMakeFiles/nue_tests.dir/test_topology.cpp.o" "gcc" "tests/CMakeFiles/nue_tests.dir/test_topology.cpp.o.d"
  "/root/repo/tests/test_traffic.cpp" "tests/CMakeFiles/nue_tests.dir/test_traffic.cpp.o" "gcc" "tests/CMakeFiles/nue_tests.dir/test_traffic.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/nue_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/nue_tests.dir/test_util.cpp.o.d"
  "/root/repo/tests/test_validate.cpp" "tests/CMakeFiles/nue_tests.dir/test_validate.cpp.o" "gcc" "tests/CMakeFiles/nue_tests.dir/test_validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nue/CMakeFiles/nue_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nue_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/nue_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/nue_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/nue_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/nue_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/nue_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
