# Empty compiler generated dependencies file for nue_tests.
# This may be replaced when dependencies are built.
