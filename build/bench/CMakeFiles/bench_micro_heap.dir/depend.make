# Empty dependencies file for bench_micro_heap.
# This may be replaced when dependencies are built.
