file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_heap.dir/bench_micro_heap.cpp.o"
  "CMakeFiles/bench_micro_heap.dir/bench_micro_heap.cpp.o.d"
  "bench_micro_heap"
  "bench_micro_heap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_heap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
