file(REMOVE_RECURSE
  "CMakeFiles/bench_tab01_topologies.dir/bench_tab01_topologies.cpp.o"
  "CMakeFiles/bench_tab01_topologies.dir/bench_tab01_topologies.cpp.o.d"
  "bench_tab01_topologies"
  "bench_tab01_topologies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab01_topologies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
