file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_nue.dir/bench_ablation_nue.cpp.o"
  "CMakeFiles/bench_ablation_nue.dir/bench_ablation_nue.cpp.o.d"
  "bench_ablation_nue"
  "bench_ablation_nue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_nue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
