# Empty dependencies file for bench_ablation_nue.
# This may be replaced when dependencies are built.
