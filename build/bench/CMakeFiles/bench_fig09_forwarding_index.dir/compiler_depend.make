# Empty compiler generated dependencies file for bench_fig09_forwarding_index.
# This may be replaced when dependencies are built.
