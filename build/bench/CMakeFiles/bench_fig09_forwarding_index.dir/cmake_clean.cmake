file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_forwarding_index.dir/bench_fig09_forwarding_index.cpp.o"
  "CMakeFiles/bench_fig09_forwarding_index.dir/bench_fig09_forwarding_index.cpp.o.d"
  "bench_fig09_forwarding_index"
  "bench_fig09_forwarding_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_forwarding_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
