
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ext_traffic.cpp" "bench/CMakeFiles/bench_ext_traffic.dir/bench_ext_traffic.cpp.o" "gcc" "bench/CMakeFiles/bench_ext_traffic.dir/bench_ext_traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nue/CMakeFiles/nue_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nue_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/nue_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/nue_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/nue_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/nue_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/nue_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
