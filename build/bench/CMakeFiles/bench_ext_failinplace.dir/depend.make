# Empty dependencies file for bench_ext_failinplace.
# This may be replaced when dependencies are built.
