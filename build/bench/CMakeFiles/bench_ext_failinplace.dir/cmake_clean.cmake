file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_failinplace.dir/bench_ext_failinplace.cpp.o"
  "CMakeFiles/bench_ext_failinplace.dir/bench_ext_failinplace.cpp.o.d"
  "bench_ext_failinplace"
  "bench_ext_failinplace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_failinplace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
