# Empty dependencies file for bench_fig01_torus_throughput.
# This may be replaced when dependencies are built.
